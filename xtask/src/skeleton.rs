//! Communication-skeleton extraction and bounded SPMD model checking
//! (DESIGN.md §13).
//!
//! The per-file passes and the call-graph facts (DESIGN.md §8/§10) answer
//! *reachability* questions — "does this function transitively issue a
//! collective?" — but ROADMAP item 4 (a real multi-process backend, where a
//! protocol mismatch is a cluster-wide hang rather than an in-process
//! panic) needs *protocol* questions answered at lint time: do all ranks
//! emit the same collective sequence, and can the p2p exchanges deadlock?
//! This module provides the shared infrastructure for the two passes that
//! answer them (`protocol_match`, `deadlock_check`):
//!
//! 1. **Skeleton IR** — [`Skel`], an ordered tree of communication
//!    operations (collective kind + tag expression, send/recv with
//!    peer-rank expression, nonblocking post/wait pairs modeled as
//!    *deferred rendezvous* — see [`Skel::Post`]) under the function's
//!    loop/branch structure, with rank-conditional branches marked. [`extract_fn`] builds it
//!    per `fn` from the token-level [`CodeModel`]; like the scanner it is
//!    *total* — arbitrary byte soup degrades to `Unknown` expressions and
//!    empty blocks, never to a panic (property-tested).
//! 2. **Expression mini-AST** — [`Expr`], capturing just enough arithmetic
//!    over rank-valued identifiers (`rank + mask`, `rank ^ 1`, `2 * rank`)
//!    to evaluate peer expressions at concrete abstract ranks. Everything
//!    else degrades to [`Expr::Opaque`]/[`Expr::Unknown`].
//! 3. **Bounded interpretation** — [`gen_traces`] runs a skeleton at a
//!    concrete `(rank, p)`, inlining comm-relevant callees through the
//!    call graph, and forks on every unknown branch/loop bound into a
//!    bounded set of per-rank *traces* (sequences of abstract comm ops
//!    plus the decision vector that produced them).
//! 4. **Interleaving simulation** — [`check_entry`] pairs one trace per
//!    rank (decisions on rank-independent state must agree across ranks),
//!    then exhaustively interleaves the sends/recvs/collectives with
//!    buffered sends and blocking recvs, at p ∈ {2, 3, 4}.
//!
//! The reporting semantics are deliberately *angelic*: a function is
//! flagged only when **no** explored resolution of the unknowns completes,
//! and any budget cap hit along the way makes the entry point
//! *inconclusive* (silent) instead. That keeps the pass sound-for-reporting
//! — every finding is a real "no execution completes within the model" —
//! at the cost of missing bugs hidden behind the caps, which is the right
//! trade for a lint gate (DESIGN.md §13 spells out the p ≤ 4 caveat).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{CallGraph, Facts};
use crate::passes::{is_rank_ident, COLLECTIVES};
use crate::scanner::{CodeModel, Token, TokenKind};

// ---------------------------------------------------------------------------
// Expression mini-AST
// ---------------------------------------------------------------------------

/// Unary operators the peer/tag expressions need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Binary operators the peer/tag expressions need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// An abstract expression: exactly the arithmetic needed to evaluate
/// peer-rank and tag expressions at a concrete abstract rank, with a total
/// fallback ([`Expr::Opaque`]/[`Expr::Unknown`]) for everything else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Named local / parameter.
    Var(String),
    /// `comm.rank()` — the abstract rank.
    Rank,
    /// `comm.size()` — the abstract communicator size.
    Size,
    /// Unknown value that *depends on the rank* (e.g. the result of a
    /// rank-conditional `if`/`match` expression).
    RankUnknown,
    /// Unknown rank-independent value.
    Unknown,
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unknown combination of the listed operands (method calls, indexing,
    /// field access): evaluates to unknown, rank-dependent iff any operand
    /// is.
    Opaque(Vec<Expr>),
}

/// Parses an integer literal body (`"42"`, `"1usize"`, `"0x1f"`, `"1_000"`).
fn parse_int(text: &str) -> Option<i64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(b) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (b, 2)
    } else if let Some(o) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (o, 8)
    } else {
        (t.as_str(), 10)
    };
    // Strip a type suffix (`usize`, `i64`, ...): keep the leading digit run.
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(digits.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    i64::from_str_radix(&digits[..end], radix).ok()
}

/// Precedence-climbing expression parser over a token range. Total: any
/// token it cannot place degrades to [`Expr::Unknown`] and the parser
/// advances, so it terminates on arbitrary input.
struct ExprParser<'a> {
    toks: &'a [Token],
    pos: usize,
    hi: usize,
}

/// Parses the token range `[lo, hi)` as one expression.
pub fn parse_expr(toks: &[Token], lo: usize, hi: usize) -> Expr {
    let hi = hi.min(toks.len());
    if lo >= hi {
        return Expr::Unknown;
    }
    ExprParser { toks, pos: lo, hi }.expr(0)
}

/// Binding power of a binary operator punct, `None` if not one.
fn bin_power(text: &str) -> Option<(BinOp, u8)> {
    Some(match text {
        "||" => (BinOp::Or, 1),
        "&&" => (BinOp::And, 2),
        "==" => (BinOp::Eq, 3),
        "!=" => (BinOp::Ne, 3),
        "<" => (BinOp::Lt, 3),
        "<=" => (BinOp::Le, 3),
        ">" => (BinOp::Gt, 3),
        ">=" => (BinOp::Ge, 3),
        "|" => (BinOp::BitOr, 4),
        "^" => (BinOp::BitXor, 5),
        "&" => (BinOp::BitAnd, 6),
        "<<" => (BinOp::Shl, 7),
        ">>" => (BinOp::Shr, 7),
        "+" => (BinOp::Add, 8),
        "-" => (BinOp::Sub, 8),
        "*" => (BinOp::Mul, 9),
        "/" => (BinOp::Div, 9),
        "%" => (BinOp::Rem, 9),
        _ => return None,
    })
}

impl<'a> ExprParser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        if self.pos < self.hi {
            Some(&self.toks[self.pos])
        } else {
            None
        }
    }

    fn expr(&mut self, min_bp: u8) -> Expr {
        let mut lhs = self.primary();
        lhs = self.postfix(lhs);
        while let Some(t) = self.peek() {
            if t.kind != TokenKind::Punct {
                break;
            }
            let Some((op, bp)) = bin_power(&t.text) else {
                break;
            };
            if bp < min_bp {
                break;
            }
            self.pos += 1;
            let rhs = {
                let mut r = self.primary();
                r = self.postfix(r);
                // Right side climbs at bp+1 (left associative).
                self.climb(r, bp + 1)
            };
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        lhs
    }

    /// Continues binary climbing with `lhs` already parsed.
    fn climb(&mut self, mut lhs: Expr, min_bp: u8) -> Expr {
        while let Some(t) = self.peek() {
            if t.kind != TokenKind::Punct {
                break;
            }
            let Some((op, bp)) = bin_power(&t.text) else {
                break;
            };
            if bp < min_bp {
                break;
            }
            self.pos += 1;
            let mut rhs = self.primary();
            rhs = self.postfix(rhs);
            let rhs = self.climb(rhs, bp + 1);
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        lhs
    }

    fn primary(&mut self) -> Expr {
        let Some(t) = self.peek() else {
            return Expr::Unknown;
        };
        match t.kind {
            TokenKind::Num { float } => {
                self.pos += 1;
                if float {
                    Expr::Unknown
                } else {
                    parse_int(&t.text).map_or(Expr::Unknown, Expr::Int)
                }
            }
            TokenKind::Ident => {
                let name = t.text.clone();
                self.pos += 1;
                match name.as_str() {
                    "true" => return Expr::Int(1),
                    "false" => return Expr::Int(0),
                    _ => {}
                }
                // Macro invocation: skip the `!` and the delimited body.
                if self.peek().is_some_and(|u| u.is_punct("!")) {
                    self.pos += 1;
                    self.skip_delimited();
                    return Expr::Unknown;
                }
                // Path segments (`a::b::f`) collapse to the last segment.
                let mut last = name;
                while self.peek().is_some_and(|u| u.is_punct("::")) {
                    self.pos += 1;
                    match self.peek() {
                        Some(u) if u.kind == TokenKind::Ident => {
                            last = u.text.clone();
                            self.pos += 1;
                        }
                        _ => return Expr::Unknown,
                    }
                }
                if self.peek().is_some_and(|u| u.is_punct("(")) {
                    let args = self.call_args();
                    return Expr::Opaque(args);
                }
                Expr::Var(last)
            }
            TokenKind::Punct => {
                let text = t.text.clone();
                self.pos += 1;
                match text.as_str() {
                    "-" => {
                        let e = self.primary();
                        let e = self.postfix(e);
                        Expr::Un(UnOp::Neg, Box::new(e))
                    }
                    "!" => {
                        let e = self.primary();
                        let e = self.postfix(e);
                        Expr::Un(UnOp::Not, Box::new(e))
                    }
                    // References and derefs are value-transparent here.
                    "&" | "*" => {
                        if self.peek().is_some_and(|u| u.is_ident("mut")) {
                            self.pos += 1;
                        }
                        let e = self.primary();
                        self.postfix(e)
                    }
                    "(" => {
                        // Parenthesized expression (tuples degrade to the
                        // first element wrapped opaque). `matching` expects
                        // `pos` at the open delimiter, so step back onto it.
                        self.pos -= 1;
                        let close = self.matching(")", "(");
                        self.pos += 1;
                        let inner = parse_expr(self.toks, self.pos, close);
                        let had_comma =
                            (self.pos..close.min(self.hi)).any(|i| self.toks[i].is_punct(","));
                        self.pos = (close + 1).min(self.hi);
                        if had_comma {
                            Expr::Opaque(vec![inner])
                        } else {
                            inner
                        }
                    }
                    _ => Expr::Unknown,
                }
            }
            _ => {
                self.pos += 1;
                Expr::Unknown
            }
        }
    }

    /// Postfix chain: method calls, field access, indexing, casts, `?`.
    fn postfix(&mut self, mut e: Expr) -> Expr {
        loop {
            let Some(t) = self.peek() else {
                return e;
            };
            if t.is_punct(".") {
                let Some(name_tok) = self.toks.get(self.pos + 1) else {
                    self.pos += 1;
                    return e;
                };
                if name_tok.kind != TokenKind::Ident
                    && !matches!(name_tok.kind, TokenKind::Num { .. })
                {
                    self.pos += 1;
                    return e;
                }
                let name = name_tok.text.clone();
                self.pos += 2;
                // `.collect::<..>()` turbofish: give up on the chain.
                if self.peek().is_some_and(|u| u.is_punct("::")) {
                    self.pos += 1;
                    return Expr::Opaque(vec![e]);
                }
                if self.peek().is_some_and(|u| u.is_punct("(")) {
                    let args = self.call_args();
                    e = match (name.as_str(), args.is_empty()) {
                        ("rank", true) => Expr::Rank,
                        ("size", true) => Expr::Size,
                        _ => {
                            let mut ops = vec![e];
                            ops.extend(args);
                            Expr::Opaque(ops)
                        }
                    };
                } else {
                    // Field access / tuple index.
                    e = Expr::Opaque(vec![e]);
                }
            } else if t.is_punct("[") {
                let close = self.matching("]", "[");
                self.pos = (close + 1).min(self.hi);
                e = Expr::Opaque(vec![e]);
            } else if t.is_punct("(") {
                let args = self.call_args();
                let mut ops = vec![e];
                ops.extend(args);
                e = Expr::Opaque(ops);
            } else if t.is_punct("?") {
                self.pos += 1;
            } else if t.is_ident("as") {
                // Skip the cast target type (ident path), value-transparent.
                self.pos += 1;
                while self
                    .peek()
                    .is_some_and(|u| u.kind == TokenKind::Ident || u.is_punct("::"))
                {
                    self.pos += 1;
                }
            } else {
                return e;
            }
        }
    }

    /// Index of the token matching `open` (which `self.pos` points at), in
    /// `[pos, hi)`; clamps to `hi - 1` when unbalanced.
    fn matching(&self, close: &str, open: &str) -> usize {
        let mut d = 0i64;
        for i in self.pos..self.hi {
            let t = &self.toks[i];
            if t.is_punct(open) {
                d += 1;
            } else if t.is_punct(close) {
                d -= 1;
                if d == 0 {
                    return i;
                }
            }
        }
        self.hi.saturating_sub(1)
    }

    /// Parses a `( a, b, ... )` argument list at `self.pos` (which points
    /// at the `(`), returning each argument as an expression and leaving
    /// `self.pos` after the `)`.
    fn call_args(&mut self) -> Vec<Expr> {
        let close = self.matching(")", "(");
        let lo = self.pos + 1;
        let mut out = Vec::new();
        let mut depth = 0i64;
        let mut start = lo;
        for i in lo..close.min(self.hi) {
            let t = &self.toks[i];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if t.is_punct(",") && depth <= 0 {
                out.push(parse_expr(self.toks, start, i));
                start = i + 1;
            }
        }
        if start < close {
            out.push(parse_expr(self.toks, start, close));
        }
        self.pos = (close + 1).min(self.hi);
        out
    }

    /// Skips one `(..)`/`[..]`/`{..}` group at `self.pos` (macro bodies).
    fn skip_delimited(&mut self) {
        let Some(t) = self.peek() else { return };
        let (o, c) = match t.text.as_str() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return,
        };
        let close = self.matching(c, o);
        self.pos = (close + 1).min(self.hi);
    }
}

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// Abstract value of an expression at a concrete `(rank, p)`. The
/// `rank_dep` bit tracks whether the value was influenced by the rank —
/// it decides whether a fork on this value is a *per-rank* decision or a
/// *shared* one that must agree across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Val {
    /// Known integer.
    Int { v: i64, rank_dep: bool },
    /// Unknown.
    Unk { rank_dep: bool },
}

impl Val {
    fn rank_dep(self) -> bool {
        match self {
            Val::Int { rank_dep, .. } | Val::Unk { rank_dep } => rank_dep,
        }
    }
}

/// Evaluates `e` in `env` at concrete `(rank, p)`.
pub fn eval(e: &Expr, env: &BTreeMap<String, Val>, rank: i64, p: i64) -> Val {
    match e {
        Expr::Int(v) => Val::Int {
            v: *v,
            rank_dep: false,
        },
        Expr::Rank => Val::Int {
            v: rank,
            rank_dep: true,
        },
        Expr::Size => Val::Int {
            v: p,
            rank_dep: false,
        },
        Expr::RankUnknown => Val::Unk { rank_dep: true },
        Expr::Unknown => Val::Unk { rank_dep: false },
        Expr::Var(name) => env.get(name).copied().unwrap_or(Val::Unk {
            rank_dep: is_rank_ident(name),
        }),
        Expr::Un(op, a) => match eval(a, env, rank, p) {
            Val::Int { v, rank_dep } => Val::Int {
                v: match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => i64::from(v == 0),
                },
                rank_dep,
            },
            unk => unk,
        },
        Expr::Bin(op, a, b) => {
            let (va, vb) = (eval(a, env, rank, p), eval(b, env, rank, p));
            let rank_dep = va.rank_dep() || vb.rank_dep();
            let (Val::Int { v: x, .. }, Val::Int { v: y, .. }) = (va, vb) else {
                return Val::Unk { rank_dep };
            };
            let v = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div if y != 0 => x.wrapping_div(y),
                BinOp::Rem if y != 0 => x.wrapping_rem(y),
                BinOp::Div | BinOp::Rem => return Val::Unk { rank_dep },
                BinOp::Shl => x.wrapping_shl(u32::try_from(y.clamp(0, 63)).unwrap_or(0)),
                BinOp::Shr => x.wrapping_shr(u32::try_from(y.clamp(0, 63)).unwrap_or(0)),
                BinOp::BitAnd => x & y,
                BinOp::BitOr => x | y,
                BinOp::BitXor => x ^ y,
                BinOp::Eq => i64::from(x == y),
                BinOp::Ne => i64::from(x != y),
                BinOp::Lt => i64::from(x < y),
                BinOp::Le => i64::from(x <= y),
                BinOp::Gt => i64::from(x > y),
                BinOp::Ge => i64::from(x >= y),
                BinOp::And => i64::from(x != 0 && y != 0),
                BinOp::Or => i64::from(x != 0 || y != 0),
            };
            Val::Int { v, rank_dep }
        }
        Expr::Opaque(ops) => Val::Unk {
            rank_dep: ops.iter().any(|o| eval(o, env, rank, p).rank_dep()),
        },
    }
}

// ---------------------------------------------------------------------------
// Skeleton IR and extraction
// ---------------------------------------------------------------------------

/// The iteration space of a `for` loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForRange {
    /// `lo..hi` / `lo..=hi`.
    Range { lo: Expr, hi: Expr, inclusive: bool },
    /// Any other iterable.
    Iter(Expr),
}

/// One node of a function's communication skeleton: the ordered tree of
/// comm operations under loop/branch structure, with just enough data flow
/// (`Let`/`Mut`) to evaluate peer expressions and loop bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Skel {
    /// Ordered children.
    Seq(Vec<Skel>),
    /// Collective call: kind + first-argument ("tag") expression.
    Coll {
        kind: String,
        tag: Expr,
        line: usize,
    },
    /// `comm.send(peer, ..)`.
    Send { peer: Expr, line: usize },
    /// `comm.recv(peer)`.
    Recv { peer: Expr, line: usize },
    /// Nonblocking post: `comm.iallreduce_sum(..)` / `comm.isend(peer, ..)`
    /// / `comm.irecv(from)`. The rendezvous is *deferred*: an `isend`'s
    /// payload transmits eagerly at the post site (matching the runtime),
    /// while an `irecv`/`iallreduce_sum` enqueues its abstract op on the
    /// rank's pending FIFO and a later [`Skel::Wait`] emits it. Emission
    /// order therefore equals post order — the same invariant the runtime's
    /// FIFO request completion enforces.
    Post {
        kind: String,
        arg: Expr,
        line: usize,
    },
    /// `req.wait()` / `req.test()`: retires the oldest pending request
    /// (emitting its deferred op, if any). A wait with nothing pending is a
    /// no-op — `.wait()` on a non-`Request` receiver extracts here too.
    Wait { line: usize },
    /// Call site (resolved against the call graph at interpretation time).
    Call {
        callee: String,
        qualifier: Option<String>,
        is_method: bool,
        line: usize,
    },
    /// `if`/`else` (chained `else if` nests in `els`).
    If {
        rank_cond: bool,
        cond: Expr,
        then: Box<Skel>,
        els: Box<Skel>,
        line: usize,
    },
    /// `match`: arm patterns are not modeled, each arm body is a child.
    Match {
        rank_cond: bool,
        cond: Expr,
        arms: Vec<Skel>,
        line: usize,
    },
    /// `while cond { body }` (`while let` has `Unknown` cond).
    While {
        cond: Expr,
        body: Box<Skel>,
        line: usize,
    },
    /// `loop { body }`.
    Loop { body: Box<Skel>, line: usize },
    /// `for var in range { body }`.
    For {
        var: Option<String>,
        range: ForRange,
        body: Box<Skel>,
        line: usize,
    },
    /// Binding or (compound) assignment: `var` takes `value`.
    Let {
        var: String,
        value: Expr,
        line: usize,
    },
    /// Opaque mutation of `var` (statement-position `var.method(..)`).
    Mut { var: String, line: usize },
    /// `break`.
    Brk,
    /// `continue`.
    Cont,
    /// `return` (or `?`-style early exit is *not* modeled).
    Ret,
}

impl Skel {
    /// Empty sequence (the canonical "nothing").
    pub fn empty() -> Skel {
        Skel::Seq(Vec::new())
    }
}

/// Maximum statement-nesting depth the extractor follows; deeper structure
/// degrades to empty blocks (guards the recursion on adversarial input).
const MAX_NEST: usize = 48;

/// True when any token in `[lo, hi)` is a rank-valued identifier.
fn mentions_rank(toks: &[Token], lo: usize, hi: usize) -> bool {
    toks[lo.min(toks.len())..hi.min(toks.len())]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && is_rank_ident(&t.text))
}

/// Extracts the communication skeleton of the fn whose body braces span
/// token indices `(open, close)` in `model`. Total on arbitrary input.
pub fn extract_fn(model: &CodeModel, open: usize, close: usize) -> Skel {
    Skel::Seq(parse_stmts(model, open + 1, close, 0))
}

/// Finds the statement-terminating `;` at delimiter depth 0 in `[i, hi)`,
/// or `hi` if none.
fn stmt_end(toks: &[Token], i: usize, hi: usize) -> usize {
    let mut d = 0i64;
    for (j, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(i) {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            d += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            d -= 1;
            if d < 0 {
                return j;
            }
        } else if t.is_punct(";") && d <= 0 {
            return j;
        }
    }
    hi.min(toks.len())
}

/// Finds the body-opening `{` at paren/bracket depth 0 in `[i, hi)`
/// (stopping at `;`), the same contract as the scanner's fn-body search.
fn body_open(toks: &[Token], i: usize, hi: usize) -> Option<usize> {
    let mut pd = 0i64;
    for (j, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(i) {
        if t.is_punct("(") || t.is_punct("[") {
            pd += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            pd -= 1;
        } else if t.is_punct("{") && pd <= 0 {
            return Some(j);
        } else if t.is_punct(";") && pd <= 0 {
            return None;
        }
    }
    None
}

/// Parses the statements in token range `[lo, hi)` into skeleton nodes.
fn parse_stmts(model: &CodeModel, lo: usize, hi: usize, depth: usize) -> Vec<Skel> {
    let toks = &model.tokens;
    let hi = hi.min(toks.len());
    let mut out = Vec::new();
    if depth > MAX_NEST {
        return out;
    }
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind != TokenKind::Ident && !t.is_punct("{") {
            i += 1;
            continue;
        }
        // Transparent block (`unsafe { .. }` arrives here via its `{`).
        if t.is_punct("{") {
            let close = model.matching_brace(i);
            out.extend(parse_stmts(model, i + 1, close.min(hi), depth + 1));
            i = close + 1;
            continue;
        }
        match t.text.as_str() {
            "if" => {
                let (node, next) = parse_if(model, i, hi, depth);
                if let Some(n) = node {
                    out.push(n);
                }
                i = next;
            }
            "while" => {
                let Some(open) = body_open(toks, i + 1, hi) else {
                    i += 1;
                    continue;
                };
                let close = model.matching_brace(open);
                let is_let = toks.get(i + 1).is_some_and(|u| u.is_ident("let"));
                let cond = if is_let {
                    if mentions_rank(toks, i + 1, open) {
                        Expr::RankUnknown
                    } else {
                        Expr::Unknown
                    }
                } else {
                    parse_expr(toks, i + 1, open)
                };
                out.push(Skel::While {
                    cond,
                    body: Box::new(Skel::Seq(parse_stmts(
                        model,
                        open + 1,
                        close.min(hi),
                        depth + 1,
                    ))),
                    line: t.line,
                });
                i = close + 1;
            }
            "loop" => {
                let Some(open) = body_open(toks, i + 1, hi) else {
                    i += 1;
                    continue;
                };
                let close = model.matching_brace(open);
                out.push(Skel::Loop {
                    body: Box::new(Skel::Seq(parse_stmts(
                        model,
                        open + 1,
                        close.min(hi),
                        depth + 1,
                    ))),
                    line: t.line,
                });
                i = close + 1;
            }
            "for" => {
                let Some(open) = body_open(toks, i + 1, hi) else {
                    i += 1;
                    continue;
                };
                let close = model.matching_brace(open);
                // `for <pat> in <iter> {`: find the `in` at depth 0.
                let mut pd = 0i64;
                let mut in_at = None;
                for (j, u) in toks.iter().enumerate().take(open).skip(i + 1) {
                    if u.is_punct("(") || u.is_punct("[") {
                        pd += 1;
                    } else if u.is_punct(")") || u.is_punct("]") {
                        pd -= 1;
                    } else if u.is_ident("in") && pd <= 0 {
                        in_at = Some(j);
                        break;
                    }
                }
                let Some(in_at) = in_at else {
                    i = close + 1;
                    continue;
                };
                let var = (in_at == i + 2 && toks[i + 1].kind == TokenKind::Ident)
                    .then(|| toks[i + 1].text.clone());
                // Complex pattern (`for (a, b) in ..`, `for &x in ..`):
                // every ident it binds shadows the enclosing scope, so havoc
                // them at the top of each iteration lest a stale outer
                // binding leak into peer/tag expressions.
                let mut pat_muts = Vec::new();
                if var.is_none() {
                    for u in &toks[i + 1..in_at] {
                        if u.kind == TokenKind::Ident
                            && !matches!(u.text.as_str(), "mut" | "ref" | "_")
                        {
                            pat_muts.push(Skel::Mut {
                                var: u.text.clone(),
                                line: t.line,
                            });
                        }
                    }
                }
                // Top-level `..` splits a range (`..=` lexes as `..` `=`).
                let mut pd2 = 0i64;
                let mut dots = None;
                for (j, u) in toks.iter().enumerate().take(open).skip(in_at + 1) {
                    if u.is_punct("(") || u.is_punct("[") {
                        pd2 += 1;
                    } else if u.is_punct(")") || u.is_punct("]") {
                        pd2 -= 1;
                    } else if u.is_punct("..") && pd2 <= 0 {
                        dots = Some(j);
                        break;
                    }
                }
                let range = match dots {
                    Some(d) => {
                        let inclusive = toks.get(d + 1).is_some_and(|u| u.is_punct("="));
                        let hi_lo = if inclusive { d + 2 } else { d + 1 };
                        ForRange::Range {
                            lo: parse_expr(toks, in_at + 1, d),
                            hi: parse_expr(toks, hi_lo, open),
                            inclusive,
                        }
                    }
                    None => ForRange::Iter(parse_expr(toks, in_at + 1, open)),
                };
                let mut body_stmts = pat_muts;
                body_stmts.extend(parse_stmts(model, open + 1, close.min(hi), depth + 1));
                out.push(Skel::For {
                    var,
                    range,
                    body: Box::new(Skel::Seq(body_stmts)),
                    line: t.line,
                });
                i = close + 1;
            }
            "match" => {
                let Some(open) = body_open(toks, i + 1, hi) else {
                    i += 1;
                    continue;
                };
                let close = model.matching_brace(open);
                let rank_cond = mentions_rank(toks, i + 1, open);
                let cond = parse_expr(toks, i + 1, open);
                let mut arms = Vec::new();
                let mut j = open + 1;
                while j < close.min(hi) {
                    // Find this arm's `=>` at depth 0 relative to the match
                    // body.
                    let mut d = 0i64;
                    let mut arrow = None;
                    for (k, u) in toks.iter().enumerate().take(close.min(hi)).skip(j) {
                        if u.is_punct("(") || u.is_punct("[") || u.is_punct("{") {
                            d += 1;
                        } else if u.is_punct(")") || u.is_punct("]") || u.is_punct("}") {
                            d -= 1;
                        } else if u.is_punct("=>") && d <= 0 {
                            arrow = Some(k);
                            break;
                        }
                    }
                    let Some(arrow) = arrow else { break };
                    if toks.get(arrow + 1).is_some_and(|u| u.is_punct("{")) {
                        let arm_close = model.matching_brace(arrow + 1);
                        arms.push(Skel::Seq(parse_stmts(
                            model,
                            arrow + 2,
                            arm_close.min(hi),
                            depth + 1,
                        )));
                        j = arm_close + 1;
                        if toks.get(j).is_some_and(|u| u.is_punct(",")) {
                            j += 1;
                        }
                    } else {
                        // Expression arm: runs to the `,` at depth 0 (or the
                        // match close).
                        let mut d2 = 0i64;
                        let mut end = close.min(hi);
                        for (k, u) in toks.iter().enumerate().take(close.min(hi)).skip(arrow + 1) {
                            if u.is_punct("(") || u.is_punct("[") || u.is_punct("{") {
                                d2 += 1;
                            } else if u.is_punct(")") || u.is_punct("]") || u.is_punct("}") {
                                d2 -= 1;
                            } else if u.is_punct(",") && d2 <= 0 {
                                end = k;
                                break;
                            }
                        }
                        arms.push(Skel::Seq(parse_stmts(model, arrow + 1, end, depth + 1)));
                        j = end + 1;
                    }
                }
                out.push(Skel::Match {
                    rank_cond,
                    cond,
                    arms,
                    line: t.line,
                });
                i = close + 1;
            }
            "let" => {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|u| u.is_ident("mut")) {
                    j += 1;
                }
                let simple_pat = toks.get(j).is_some_and(|u| u.kind == TokenKind::Ident)
                    && toks
                        .get(j + 1)
                        .is_some_and(|u| u.is_punct(":") || u.is_punct("="));
                if !simple_pat {
                    // Destructuring / `let Some(x) =` patterns: no binding
                    // modeled; keep scanning inside for comm ops.
                    i += 1;
                    continue;
                }
                let var = toks[j].text.clone();
                // Find the `=` at depth 0 (skips an annotated type).
                let end = stmt_end(toks, j + 1, hi);
                let mut eq = None;
                let mut d = 0i64;
                for (k, u) in toks.iter().enumerate().take(end).skip(j + 1) {
                    if u.is_punct("(") || u.is_punct("[") || u.is_punct("{") {
                        d += 1;
                    } else if u.is_punct(")") || u.is_punct("]") || u.is_punct("}") {
                        d -= 1;
                    } else if u.is_punct("=") && d <= 0 {
                        eq = Some(k);
                        break;
                    }
                }
                let Some(eq) = eq else {
                    i = end + 1;
                    continue;
                };
                let rhs = eq + 1;
                let rhs_structured = toks
                    .get(rhs)
                    .is_some_and(|u| u.is_ident("if") || u.is_ident("match"));
                let value = if rhs_structured {
                    // The branch structure is walked below (so its comm ops
                    // are recorded); the bound value itself is unknown,
                    // rank-dependent when the branch selection is.
                    let probe_hi = body_open(toks, rhs + 1, hi).unwrap_or(end);
                    if mentions_rank(toks, rhs + 1, probe_hi) {
                        Expr::RankUnknown
                    } else {
                        Expr::Unknown
                    }
                } else {
                    parse_expr(toks, rhs, end)
                };
                out.push(Skel::Let {
                    var,
                    value,
                    line: t.line,
                });
                // Continue scanning *inside* the right-hand side: comm ops
                // in the initializer (`let r = comm.recv(src);`) are real
                // ops the expression parser deliberately does not record.
                i = rhs;
            }
            "break" => {
                out.push(Skel::Brk);
                i += 1;
            }
            "continue" => {
                out.push(Skel::Cont);
                i += 1;
            }
            "return" => {
                out.push(Skel::Ret);
                i += 1;
            }
            "fn" => {
                // Nested fn item: its body is summarized separately.
                match body_open(toks, i + 1, hi) {
                    Some(open) => i = model.matching_brace(open) + 1,
                    None => i += 1,
                }
            }
            _ => {
                let line = t.line;
                let next_open = toks.get(i + 1).is_some_and(|u| u.is_punct("("));
                let prev_dot = i > 0 && toks[i - 1].is_punct(".");
                if prev_dot && next_open {
                    // Method call.
                    let args = model.call_args(i + 1);
                    let close = model.matching_paren(i + 1);
                    let arg0 = args
                        .first()
                        .map_or(Expr::Unknown, |&(a, b)| parse_expr(toks, a, b));
                    match t.text.as_str() {
                        k if COLLECTIVES.contains(&k) => {
                            out.push(Skel::Coll {
                                kind: k.to_string(),
                                tag: arg0,
                                line,
                            });
                            i = close + 1;
                        }
                        "send" => {
                            out.push(Skel::Send { peer: arg0, line });
                            i = close + 1;
                        }
                        "recv" => {
                            out.push(Skel::Recv { peer: arg0, line });
                            i = close + 1;
                        }
                        k @ ("iallreduce_sum" | "isend" | "irecv") => {
                            out.push(Skel::Post {
                                kind: k.to_string(),
                                arg: arg0,
                                line,
                            });
                            i = close + 1;
                        }
                        "wait" | "test" if args.is_empty() => {
                            // Zero-arg only: `Condvar::wait(guard)` and
                            // friends fall through to the generic call arm.
                            out.push(Skel::Wait { line });
                            i = close + 1;
                        }
                        "rank" | "size" => {
                            // Value reads, no comm op.
                            i = close + 1;
                        }
                        name => {
                            // Receiver mutation: statement-position
                            // `var.method(..)` havocs `var` (`combines
                            // .push(..)` must taint the later unroll).
                            if i >= 2
                                && toks[i - 2].kind == TokenKind::Ident
                                && (i < 3 || !toks[i - 3].is_punct("."))
                            {
                                out.push(Skel::Mut {
                                    var: toks[i - 2].text.clone(),
                                    line,
                                });
                            }
                            out.push(Skel::Call {
                                callee: name.to_string(),
                                qualifier: None,
                                is_method: true,
                                line,
                            });
                            i += 1;
                        }
                    }
                    continue;
                }
                if !prev_dot && next_open {
                    // Bare / path call (mirrors the call-graph extractor).
                    if crate::callgraph::NON_CALL_KEYWORDS.contains(&t.text.as_str())
                        || (i > 0 && toks[i - 1].is_ident("fn"))
                    {
                        i += 1;
                        continue;
                    }
                    let mut qual_segs: Vec<String> = Vec::new();
                    let mut j = i;
                    while j >= 2
                        && toks[j - 1].is_punct("::")
                        && toks[j - 2].kind == TokenKind::Ident
                    {
                        qual_segs.push(toks[j - 2].text.clone());
                        j -= 2;
                    }
                    qual_segs.reverse();
                    let qualifier = (!qual_segs.is_empty()).then(|| qual_segs.join("::"));
                    let bare_ctor = qualifier.is_none()
                        && t.text.chars().next().is_some_and(char::is_uppercase);
                    if !bare_ctor {
                        out.push(Skel::Call {
                            callee: t.text.clone(),
                            qualifier,
                            is_method: false,
                            line,
                        });
                    }
                    i += 1;
                    continue;
                }
                // Assignment / compound assignment on a plain variable.
                if !prev_dot && toks.get(i + 1).is_some_and(|u| u.kind == TokenKind::Punct) {
                    let op_text = toks[i + 1].text.as_str();
                    let (bin, rhs_at) = match op_text {
                        "=" => (None, Some(i + 2)),
                        "+=" => (Some(BinOp::Add), Some(i + 2)),
                        "-=" => (Some(BinOp::Sub), Some(i + 2)),
                        "*=" => (Some(BinOp::Mul), Some(i + 2)),
                        "/=" => (Some(BinOp::Div), Some(i + 2)),
                        // `<<=`/`>>=` lex as `<<` `=` / `>>` `=`.
                        "<<" | ">>" if toks.get(i + 2).is_some_and(|u| u.is_punct("=")) => (
                            Some(if op_text == "<<" {
                                BinOp::Shl
                            } else {
                                BinOp::Shr
                            }),
                            Some(i + 3),
                        ),
                        _ => (None, None),
                    };
                    if let Some(rhs) = rhs_at {
                        let end = stmt_end(toks, rhs, hi);
                        let rhs_expr = parse_expr(toks, rhs, end);
                        let value = match bin {
                            Some(op) => Expr::Bin(
                                op,
                                Box::new(Expr::Var(t.text.clone())),
                                Box::new(rhs_expr),
                            ),
                            None => rhs_expr,
                        };
                        out.push(Skel::Let {
                            var: t.text.clone(),
                            value,
                            line,
                        });
                        i = rhs;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    out
}

/// Parses an `if` chain starting at token `i` (which holds `if`); returns
/// the node (if a body was found) and the index to continue from.
fn parse_if(model: &CodeModel, i: usize, hi: usize, depth: usize) -> (Option<Skel>, usize) {
    let toks = &model.tokens;
    if depth > MAX_NEST {
        return (None, i + 1);
    }
    let line = toks[i].line;
    let Some(open) = body_open(toks, i + 1, hi) else {
        return (None, i + 1);
    };
    let close = model.matching_brace(open);
    let is_let = toks.get(i + 1).is_some_and(|u| u.is_ident("let"));
    let rank_cond = mentions_rank(toks, i + 1, open);
    let cond = if is_let {
        if rank_cond {
            Expr::RankUnknown
        } else {
            Expr::Unknown
        }
    } else {
        parse_expr(toks, i + 1, open)
    };
    let then = Skel::Seq(parse_stmts(model, open + 1, close.min(hi), depth + 1));
    let mut next = close + 1;
    let els = if toks.get(next).is_some_and(|u| u.is_ident("else")) {
        if toks.get(next + 1).is_some_and(|u| u.is_ident("if")) {
            let (nested, after) = parse_if(model, next + 1, hi, depth + 1);
            next = after;
            nested.unwrap_or_else(Skel::empty)
        } else if let Some(eopen) = body_open(toks, next + 1, hi) {
            let eclose = model.matching_brace(eopen);
            next = eclose + 1;
            Skel::Seq(parse_stmts(model, eopen + 1, eclose.min(hi), depth + 1))
        } else {
            next += 1;
            Skel::empty()
        }
    } else {
        Skel::empty()
    };
    (
        Some(Skel::If {
            rank_cond,
            cond,
            then: Box::new(then),
            els: Box::new(els),
            line,
        }),
        next,
    )
}

// ---------------------------------------------------------------------------
// Wire format (content-hash cache)
// ---------------------------------------------------------------------------
//
// Single-line s-expression serialization. All string atoms are Rust
// identifiers or `::`-joined paths (never contain spaces or parens), so
// atoms need no escaping; any anomaly while parsing yields `None`, which
// the cache treats as a miss.

fn expr_wire(e: &Expr, out: &mut String) {
    use std::fmt::Write as _;
    match e {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Var(n) => {
            let _ = write!(out, "${n}");
        }
        Expr::Rank => out.push_str("@r"),
        Expr::Size => out.push_str("@p"),
        Expr::RankUnknown => out.push_str("?r"),
        Expr::Unknown => out.push('?'),
        Expr::Un(op, a) => {
            out.push('(');
            out.push_str(match op {
                UnOp::Neg => "neg",
                UnOp::Not => "not",
            });
            out.push(' ');
            expr_wire(a, out);
            out.push(')');
        }
        Expr::Bin(op, a, b) => {
            out.push('(');
            out.push_str(bin_sym(*op));
            out.push(' ');
            expr_wire(a, out);
            out.push(' ');
            expr_wire(b, out);
            out.push(')');
        }
        Expr::Opaque(ops) => {
            out.push_str("(o");
            for o in ops {
                out.push(' ');
                expr_wire(o, out);
            }
            out.push(')');
        }
    }
}

fn bin_sym(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn sym_bin(s: &str) -> Option<BinOp> {
    Some(match s {
        "+" => BinOp::Add,
        "-" => BinOp::Sub,
        "*" => BinOp::Mul,
        "/" => BinOp::Div,
        "%" => BinOp::Rem,
        "<<" => BinOp::Shl,
        ">>" => BinOp::Shr,
        "&" => BinOp::BitAnd,
        "|" => BinOp::BitOr,
        "^" => BinOp::BitXor,
        "==" => BinOp::Eq,
        "!=" => BinOp::Ne,
        "<" => BinOp::Lt,
        "<=" => BinOp::Le,
        ">" => BinOp::Gt,
        ">=" => BinOp::Ge,
        "&&" => BinOp::And,
        "||" => BinOp::Or,
        _ => return None,
    })
}

fn skel_wire(s: &Skel, out: &mut String) {
    use std::fmt::Write as _;
    match s {
        Skel::Seq(xs) => {
            out.push_str("(q");
            for x in xs {
                out.push(' ');
                skel_wire(x, out);
            }
            out.push(')');
        }
        Skel::Coll { kind, tag, line } => {
            let _ = write!(out, "(c {kind} {line} ");
            expr_wire(tag, out);
            out.push(')');
        }
        Skel::Send { peer, line } => {
            let _ = write!(out, "(s {line} ");
            expr_wire(peer, out);
            out.push(')');
        }
        Skel::Recv { peer, line } => {
            let _ = write!(out, "(r {line} ");
            expr_wire(peer, out);
            out.push(')');
        }
        Skel::Post { kind, arg, line } => {
            let _ = write!(out, "(p {kind} {line} ");
            expr_wire(arg, out);
            out.push(')');
        }
        Skel::Wait { line } => {
            let _ = write!(out, "(v {line})");
        }
        Skel::Call {
            callee,
            qualifier,
            is_method,
            line,
        } => {
            let _ = write!(
                out,
                "(k {callee} {} {} {line})",
                qualifier.as_deref().unwrap_or("!"),
                if *is_method { "m" } else { "f" },
            );
        }
        Skel::If {
            rank_cond,
            cond,
            then,
            els,
            line,
        } => {
            let _ = write!(out, "(i {} {line} ", u8::from(*rank_cond));
            expr_wire(cond, out);
            out.push(' ');
            skel_wire(then, out);
            out.push(' ');
            skel_wire(els, out);
            out.push(')');
        }
        Skel::Match {
            rank_cond,
            cond,
            arms,
            line,
        } => {
            let _ = write!(out, "(m {} {line} ", u8::from(*rank_cond));
            expr_wire(cond, out);
            for a in arms {
                out.push(' ');
                skel_wire(a, out);
            }
            out.push(')');
        }
        Skel::While { cond, body, line } => {
            let _ = write!(out, "(w {line} ");
            expr_wire(cond, out);
            out.push(' ');
            skel_wire(body, out);
            out.push(')');
        }
        Skel::Loop { body, line } => {
            let _ = write!(out, "(l {line} ");
            skel_wire(body, out);
            out.push(')');
        }
        Skel::For {
            var,
            range,
            body,
            line,
        } => {
            let _ = write!(out, "(f {line} {} ", var.as_deref().unwrap_or("!"));
            match range {
                ForRange::Range { lo, hi, inclusive } => {
                    let _ = write!(out, "R {} ", u8::from(*inclusive));
                    expr_wire(lo, out);
                    out.push(' ');
                    expr_wire(hi, out);
                }
                ForRange::Iter(e) => {
                    out.push_str("I ");
                    expr_wire(e, out);
                }
            }
            out.push(' ');
            skel_wire(body, out);
            out.push(')');
        }
        Skel::Let { var, value, line } => {
            let _ = write!(out, "(a {var} {line} ");
            expr_wire(value, out);
            out.push(')');
        }
        Skel::Mut { var, line } => {
            let _ = write!(out, "(u {var} {line})");
        }
        Skel::Brk => out.push_str("(b)"),
        Skel::Cont => out.push_str("(n)"),
        Skel::Ret => out.push_str("(t)"),
    }
}

/// Serializes a skeleton to its single-line wire form.
pub fn to_wire(s: &Skel) -> String {
    let mut out = String::new();
    skel_wire(s, &mut out);
    out
}

/// One lexed wire token: `(`, `)`, or an atom.
fn wire_lex(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' | ')' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                out.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

struct WireParser<'a> {
    toks: &'a [String],
    pos: usize,
}

impl WireParser<'_> {
    fn next(&mut self) -> Option<&str> {
        let t = self.toks.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    fn eat(&mut self, s: &str) -> Option<()> {
        (self.next()? == s).then_some(())
    }

    fn atom(&mut self) -> Option<String> {
        let t = self.next()?;
        if t == "(" || t == ")" {
            return None;
        }
        Some(t.to_string())
    }

    fn num(&mut self) -> Option<usize> {
        self.atom()?.parse().ok()
    }

    fn expr(&mut self) -> Option<Expr> {
        let t = self.next()?;
        match t {
            "@r" => Some(Expr::Rank),
            "@p" => Some(Expr::Size),
            "?r" => Some(Expr::RankUnknown),
            "?" => Some(Expr::Unknown),
            "(" => {
                let head = self.atom()?;
                let e = match head.as_str() {
                    "neg" | "not" => {
                        let a = self.expr()?;
                        Expr::Un(
                            if head == "neg" { UnOp::Neg } else { UnOp::Not },
                            Box::new(a),
                        )
                    }
                    "o" => {
                        let mut ops = Vec::new();
                        while self.toks.get(self.pos).is_some_and(|t| t != ")") {
                            ops.push(self.expr()?);
                        }
                        let out = Expr::Opaque(ops);
                        self.eat(")")?;
                        return Some(out);
                    }
                    sym => {
                        let op = sym_bin(sym)?;
                        let a = self.expr()?;
                        let b = self.expr()?;
                        Expr::Bin(op, Box::new(a), Box::new(b))
                    }
                };
                self.eat(")")?;
                Some(e)
            }
            t => {
                if let Some(name) = t.strip_prefix('$') {
                    return Some(Expr::Var(name.to_string()));
                }
                t.parse().ok().map(Expr::Int)
            }
        }
    }

    fn skel(&mut self) -> Option<Skel> {
        self.eat("(")?;
        let head = self.atom()?;
        let node = match head.as_str() {
            "q" => {
                let mut xs = Vec::new();
                while self.toks.get(self.pos).is_some_and(|t| t != ")") {
                    xs.push(self.skel()?);
                }
                Skel::Seq(xs)
            }
            "c" => Skel::Coll {
                kind: self.atom()?,
                line: self.num()?,
                tag: self.expr()?,
            },
            "s" => Skel::Send {
                line: self.num()?,
                peer: self.expr()?,
            },
            "r" => Skel::Recv {
                line: self.num()?,
                peer: self.expr()?,
            },
            "p" => Skel::Post {
                kind: self.atom()?,
                line: self.num()?,
                arg: self.expr()?,
            },
            "v" => Skel::Wait { line: self.num()? },
            "k" => {
                let callee = self.atom()?;
                let q = self.atom()?;
                let m = self.atom()?;
                Skel::Call {
                    callee,
                    qualifier: (q != "!").then_some(q),
                    is_method: m == "m",
                    line: self.num()?,
                }
            }
            "i" => Skel::If {
                rank_cond: self.atom()? == "1",
                line: self.num()?,
                cond: self.expr()?,
                then: Box::new(self.skel()?),
                els: Box::new(self.skel()?),
            },
            "m" => {
                let rank_cond = self.atom()? == "1";
                let line = self.num()?;
                let cond = self.expr()?;
                let mut arms = Vec::new();
                while self.toks.get(self.pos).is_some_and(|t| t != ")") {
                    arms.push(self.skel()?);
                }
                Skel::Match {
                    rank_cond,
                    cond,
                    arms,
                    line,
                }
            }
            "w" => Skel::While {
                line: self.num()?,
                cond: self.expr()?,
                body: Box::new(self.skel()?),
            },
            "l" => Skel::Loop {
                line: self.num()?,
                body: Box::new(self.skel()?),
            },
            "f" => {
                let line = self.num()?;
                let v = self.atom()?;
                let var = (v != "!").then_some(v);
                let range = match self.atom()?.as_str() {
                    "R" => {
                        let inclusive = self.atom()? == "1";
                        ForRange::Range {
                            inclusive,
                            lo: self.expr()?,
                            hi: self.expr()?,
                        }
                    }
                    "I" => ForRange::Iter(self.expr()?),
                    _ => return None,
                };
                Skel::For {
                    var,
                    range,
                    body: Box::new(self.skel()?),
                    line,
                }
            }
            "a" => Skel::Let {
                var: self.atom()?,
                line: self.num()?,
                value: self.expr()?,
            },
            "u" => Skel::Mut {
                var: self.atom()?,
                line: self.num()?,
            },
            "b" => Skel::Brk,
            "n" => Skel::Cont,
            "t" => Skel::Ret,
            _ => return None,
        };
        self.eat(")")?;
        Some(node)
    }
}

/// Parses the wire form back into a skeleton; `None` on any anomaly (the
/// cache degrades to a miss).
pub fn from_wire(s: &str) -> Option<Skel> {
    let toks = wire_lex(s);
    let mut p = WireParser {
        toks: &toks,
        pos: 0,
    };
    let out = p.skel()?;
    (p.pos == toks.len()).then_some(out)
}

// ---------------------------------------------------------------------------
// Bounded interpretation: per-rank traces
// ---------------------------------------------------------------------------

/// The abstract rank counts `deadlock_check` simulates. Small by design:
/// the interleaving space is exponential in `p`, and the binomial-tree /
/// neighbor-exchange protocols this workspace uses already exercise every
/// structural case (leaf, interior, root, idle rank) by p = 4. The
/// soundness caveat — a protocol correct at p ≤ 4 but wrong at p = 5 passes
/// the gate — is documented in DESIGN.md §13.
pub const CHECK_PS: &[usize] = &[2, 3, 4];

/// Abstract peer of a send/recv after evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PeerVal {
    /// Concrete rank (may be out of `0..p`: such a message matches no one).
    Known(i64),
    /// Unknown: matches any rank.
    Any,
}

/// Abstract collective tag (first argument) after evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagVal {
    /// Concrete value: participating ranks must agree on it.
    Known(i64),
    /// Unknown: compatible with anything.
    Any,
}

/// One abstract comm operation in a rank's trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Collective rendezvous.
    Coll {
        kind: String,
        tag: TagVal,
        line: usize,
    },
    /// Buffered (eager) point-to-point send.
    Send { peer: PeerVal, line: usize },
    /// Blocking point-to-point receive.
    Recv { peer: PeerVal, line: usize },
}

/// One branch/unroll decision taken while generating a trace. Decisions at
/// the same `(line, occ)` site with `shared == true` resolve
/// rank-independent state and must agree across ranks when traces are
/// paired into an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dec {
    pub line: usize,
    pub occ: usize,
    pub choice: usize,
    pub shared: bool,
}

/// One complete per-rank trace: the op sequence and the decisions that
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    pub ops: Vec<Op>,
    pub decs: Vec<Dec>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Broke,
    Continued,
    Returned,
}

#[derive(Debug, Clone)]
struct Th {
    ops: Vec<Op>,
    env: BTreeMap<String, Val>,
    decs: Vec<Dec>,
    occ: BTreeMap<usize, usize>,
    flow: Flow,
    /// Posted-but-unretired nonblocking requests, in post order. `None` is
    /// an `isend` placeholder (its `Send` already emitted eagerly); `Some`
    /// holds the deferred `Recv`/`Coll` op a later `Wait` will emit. The
    /// FIFO mirrors the runtime invariant that requests complete in post
    /// order regardless of which handle is waited first.
    pending: VecDeque<Option<Op>>,
}

impl Default for Th {
    fn default() -> Self {
        Th {
            ops: Vec::new(),
            env: BTreeMap::new(),
            decs: Vec::new(),
            occ: BTreeMap::new(),
            flow: Flow::Normal,
            pending: VecDeque::new(),
        }
    }
}

/// Budget caps. Hitting any of them marks the generation *capped*, which
/// makes the whole entry point inconclusive (silent) — see the module docs
/// on angelic reporting.
const MAX_TRACES: usize = 16;
const MAX_OPS: usize = 256;
const MAX_ITERS: usize = 64;
const MAX_INLINE: usize = 8;
const MAX_UNROLL: usize = 2;
const MAX_COMBOS: usize = 256;
const SIM_BUDGET: usize = 20_000;
const MAX_STEPS: usize = 100_000;

struct Gen<'a> {
    g: &'a CallGraph,
    facts: &'a Facts,
    p: i64,
    rank: i64,
    capped: bool,
    /// exec_node invocation counter: the hard work bound. Exceeding it
    /// sets `capped` and short-circuits the rest of the walk (nodes are
    /// skipped, which is sound under angelic reporting — the entry
    /// degrades to Inconclusive unless a clean completion was found).
    steps: usize,
    /// Inlined callee skeletons, cloned once per target (stable addresses
    /// let `effect_memo` key on them).
    skel_cache: BTreeMap<usize, std::rc::Rc<Skel>>,
    /// `has_effect` results keyed by (fn node, subtree address).
    effect_memo: BTreeMap<(usize, usize), bool>,
    /// `inline_targets` results keyed by (fn node, call line, callee).
    target_memo: BTreeMap<(usize, usize, String), Vec<usize>>,
}

impl Gen<'_> {
    fn eval(&self, e: &Expr, env: &BTreeMap<String, Val>) -> Val {
        eval(e, env, self.rank, self.p)
    }

    /// Inline candidates of a call site: targets that transitively issue a
    /// collective or p2p op. Non-comm callees are skipped entirely.
    fn inline_targets(&mut self, ni: usize, line: usize, callee: &str) -> Vec<usize> {
        let key = (ni, line, callee.to_string());
        if let Some(v) = self.target_memo.get(&key) {
            return v.clone();
        }
        let mut out = BTreeSet::new();
        for edge in &self.g.edges[ni] {
            if edge.site.line != line || edge.site.callee != callee {
                continue;
            }
            for &t in &edge.targets {
                if self.facts.collective[t].is_some() || self.facts.p2p[t].is_some() {
                    out.insert(t);
                }
            }
        }
        let v: Vec<usize> = out.into_iter().collect();
        self.target_memo.insert(key, v.clone());
        v
    }

    /// One shared clone of a callee's skeleton (stable address for the
    /// effect memo).
    fn callee_skel(&mut self, t: usize) -> std::rc::Rc<Skel> {
        if let Some(s) = self.skel_cache.get(&t) {
            return s.clone();
        }
        let s = std::rc::Rc::new(self.g.summary(t).skeleton.clone());
        self.skel_cache.insert(t, s.clone());
        s
    }

    /// True when executing (or skipping) `s` can change the comm behavior:
    /// it contains a comm op, a control escape, or a call that reaches one.
    /// Memoized on the subtree address (skeletons are cloned once per run,
    /// so addresses are stable for the lifetime of this `Gen`).
    fn has_effect(&mut self, s: &Skel, ni: usize) -> bool {
        let key = (ni, s as *const Skel as usize);
        if let Some(&v) = self.effect_memo.get(&key) {
            return v;
        }
        let v = self.has_effect_uncached(s, ni);
        self.effect_memo.insert(key, v);
        v
    }

    fn has_effect_uncached(&mut self, s: &Skel, ni: usize) -> bool {
        match s {
            Skel::Seq(xs) => xs.iter().any(|x| self.has_effect(x, ni)),
            Skel::Coll { .. } | Skel::Send { .. } | Skel::Recv { .. } => true,
            Skel::Post { .. } | Skel::Wait { .. } => true,
            Skel::Brk | Skel::Cont | Skel::Ret => true,
            Skel::Call { callee, line, .. } => !self.inline_targets(ni, *line, callee).is_empty(),
            Skel::If { then, els, .. } => self.has_effect(then, ni) || self.has_effect(els, ni),
            Skel::Match { arms, .. } => arms.iter().any(|a| self.has_effect(a, ni)),
            Skel::While { body, .. } | Skel::Loop { body, .. } | Skel::For { body, .. } => {
                self.has_effect(body, ni)
            }
            Skel::Let { .. } | Skel::Mut { .. } => false,
        }
    }

    /// Havocs every variable the subtree can assign (used when an
    /// unknown-condition region is skipped rather than forked).
    fn havoc(&self, s: &Skel, env: &mut BTreeMap<String, Val>, rd: bool) {
        match s {
            Skel::Seq(xs) => xs.iter().for_each(|x| self.havoc(x, env, rd)),
            Skel::Let { var, .. } | Skel::Mut { var, .. } => {
                let old = env.get(var).map_or(is_rank_ident(var), |v| v.rank_dep());
                env.insert(
                    var.clone(),
                    Val::Unk {
                        rank_dep: old || rd,
                    },
                );
            }
            Skel::If { then, els, .. } => {
                self.havoc(then, env, rd);
                self.havoc(els, env, rd);
            }
            Skel::Match { arms, .. } => arms.iter().for_each(|a| self.havoc(a, env, rd)),
            Skel::While { body, .. } | Skel::Loop { body, .. } => self.havoc(body, env, rd),
            Skel::For { var, body, .. } => {
                if let Some(v) = var {
                    env.insert(v.clone(), Val::Unk { rank_dep: rd });
                }
                self.havoc(body, env, rd);
            }
            _ => {}
        }
    }

    fn push_op(&mut self, th: &mut Th, op: Op) {
        if th.ops.len() >= MAX_OPS {
            self.capped = true;
        } else {
            th.ops.push(op);
        }
    }

    fn peer_val(&self, v: Val) -> PeerVal {
        match v {
            Val::Int { v, .. } => PeerVal::Known(v),
            Val::Unk { .. } => PeerVal::Any,
        }
    }

    /// Takes one fresh decision at `(line)` for thread `th`.
    fn decide(th: &mut Th, line: usize, choice: usize, shared: bool) -> usize {
        let occ = *th.occ.get(&line).unwrap_or(&0);
        th.decs.push(Dec {
            line,
            occ,
            choice,
            shared,
        });
        occ
    }

    /// Runs `body` exactly `k` times over `ths`, honoring break/continue/
    /// return.
    fn run_repeat(
        &mut self,
        body: &Skel,
        ths: Vec<Th>,
        k: usize,
        ni: usize,
        stack: &mut Vec<usize>,
        ctrl_rd: bool,
    ) -> Vec<Th> {
        let mut done = Vec::new();
        let mut active = ths;
        for _ in 0..k {
            let mut next = Vec::new();
            for th in active {
                if th.flow != Flow::Normal {
                    done.push(th);
                    continue;
                }
                for mut r in self.exec_node(body, th, ni, stack, ctrl_rd) {
                    match r.flow {
                        Flow::Broke => {
                            r.flow = Flow::Normal;
                            done.push(r);
                        }
                        Flow::Returned => done.push(r),
                        Flow::Continued => {
                            r.flow = Flow::Normal;
                            next.push(r);
                        }
                        Flow::Normal => next.push(r),
                    }
                }
            }
            active = next;
            self.cap_threads(&mut active);
        }
        done.extend(active);
        done
    }

    fn cap_threads(&mut self, ths: &mut Vec<Th>) {
        if ths.len() > MAX_TRACES {
            ths.truncate(MAX_TRACES);
            self.capped = true;
        }
    }

    fn exec_seq(
        &mut self,
        nodes: &[Skel],
        ths: Vec<Th>,
        ni: usize,
        stack: &mut Vec<usize>,
        ctrl_rd: bool,
    ) -> Vec<Th> {
        let mut ths = ths;
        for node in nodes {
            let mut next = Vec::new();
            for th in ths {
                if th.flow != Flow::Normal {
                    next.push(th);
                } else {
                    next.extend(self.exec_node(node, th, ni, stack, ctrl_rd));
                }
            }
            ths = next;
            self.cap_threads(&mut ths);
        }
        ths
    }

    fn exec_node(
        &mut self,
        node: &Skel,
        mut th: Th,
        ni: usize,
        stack: &mut Vec<usize>,
        ctrl_rd: bool,
    ) -> Vec<Th> {
        self.steps += 1;
        if self.steps > MAX_STEPS {
            self.capped = true;
            return vec![th];
        }
        match node {
            Skel::Seq(xs) => self.exec_seq(xs, vec![th], ni, stack, ctrl_rd),
            Skel::Coll { kind, tag, line } => {
                let tv = match self.eval(tag, &th.env) {
                    Val::Int { v, .. } => TagVal::Known(v),
                    Val::Unk { .. } => TagVal::Any,
                };
                self.push_op(
                    &mut th,
                    Op::Coll {
                        kind: kind.clone(),
                        tag: tv,
                        line: *line,
                    },
                );
                vec![th]
            }
            Skel::Send { peer, line } => {
                let pv = self.peer_val(self.eval(peer, &th.env));
                self.push_op(
                    &mut th,
                    Op::Send {
                        peer: pv,
                        line: *line,
                    },
                );
                vec![th]
            }
            Skel::Recv { peer, line } => {
                let pv = self.peer_val(self.eval(peer, &th.env));
                self.push_op(
                    &mut th,
                    Op::Recv {
                        peer: pv,
                        line: *line,
                    },
                );
                vec![th]
            }
            Skel::Post { kind, arg, line } => {
                if th.pending.len() >= MAX_OPS {
                    self.capped = true;
                    return vec![th];
                }
                match kind.as_str() {
                    "isend" => {
                        // Payload transmits at post time (eager buffering in
                        // the runtime): the Send is emitted here and the
                        // queue only gets a placeholder for the wait to
                        // retire.
                        let pv = self.peer_val(self.eval(arg, &th.env));
                        self.push_op(
                            &mut th,
                            Op::Send {
                                peer: pv,
                                line: *line,
                            },
                        );
                        th.pending.push_back(None);
                    }
                    "irecv" => {
                        let pv = self.peer_val(self.eval(arg, &th.env));
                        th.pending.push_back(Some(Op::Recv {
                            peer: pv,
                            line: *line,
                        }));
                    }
                    _ => {
                        // `iallreduce_sum`: a deferred collective. The kind
                        // string is kept distinct from the blocking
                        // `allreduce_sum` — the runtime routes them over
                        // separate channels, so mixing them across ranks is
                        // a real mismatch the rendezvous check must see.
                        let tv = match self.eval(arg, &th.env) {
                            Val::Int { v, .. } => TagVal::Known(v),
                            Val::Unk { .. } => TagVal::Any,
                        };
                        th.pending.push_back(Some(Op::Coll {
                            kind: kind.clone(),
                            tag: tv,
                            line: *line,
                        }));
                    }
                }
                vec![th]
            }
            Skel::Wait { .. } => {
                // Retire the oldest pending request; emit its deferred op at
                // this wait site. Which *handle* is waited is immaterial —
                // runtime completion is FIFO in post order — so the lexical
                // queue is the faithful (and decidable) model. Nothing
                // pending means a foreign `.wait()`: no-op.
                if let Some(Some(op)) = th.pending.pop_front() {
                    self.push_op(&mut th, op);
                }
                vec![th]
            }
            Skel::Let { var, value, .. } => {
                let v = match self.eval(value, &th.env) {
                    Val::Int { v, rank_dep } => Val::Int {
                        v,
                        rank_dep: rank_dep || ctrl_rd,
                    },
                    Val::Unk { rank_dep } => Val::Unk {
                        rank_dep: rank_dep || ctrl_rd,
                    },
                };
                th.env.insert(var.clone(), v);
                vec![th]
            }
            Skel::Mut { var, .. } => {
                let old = th.env.get(var).map_or(is_rank_ident(var), |v| v.rank_dep());
                th.env.insert(
                    var.clone(),
                    Val::Unk {
                        rank_dep: old || ctrl_rd,
                    },
                );
                vec![th]
            }
            Skel::Brk => {
                th.flow = Flow::Broke;
                vec![th]
            }
            Skel::Cont => {
                th.flow = Flow::Continued;
                vec![th]
            }
            Skel::Ret => {
                th.flow = Flow::Returned;
                vec![th]
            }
            Skel::Call { callee, line, .. } => {
                let targets = self.inline_targets(ni, *line, callee);
                match targets.as_slice() {
                    [] => vec![th],
                    [t] => {
                        let t = *t;
                        if stack.contains(&t) || stack.len() >= MAX_INLINE {
                            self.capped = true;
                            return vec![th];
                        }
                        let skel = self.callee_skel(t);
                        let saved = std::mem::take(&mut th.env);
                        stack.push(t);
                        let out = self.exec_node(&skel, th, t, stack, ctrl_rd);
                        stack.pop();
                        out.into_iter()
                            .map(|mut r| {
                                r.env = saved.clone();
                                if r.flow == Flow::Returned {
                                    // A `return` is local to the callee.
                                    r.flow = Flow::Normal;
                                }
                                r
                            })
                            .collect()
                    }
                    _ => {
                        // Ambiguous comm helper: no sound inline choice.
                        self.capped = true;
                        vec![th]
                    }
                }
            }
            Skel::If {
                cond,
                then,
                els,
                line,
                ..
            } => match self.eval(cond, &th.env) {
                Val::Int { v, rank_dep } => {
                    let branch = if v != 0 { then } else { els };
                    self.exec_node(branch, th, ni, stack, ctrl_rd || rank_dep)
                }
                Val::Unk { rank_dep } => {
                    let rd = ctrl_rd || rank_dep;
                    if !self.has_effect(then, ni) && !self.has_effect(els, ni) {
                        let mut env = std::mem::take(&mut th.env);
                        self.havoc(then, &mut env, rd);
                        self.havoc(els, &mut env, rd);
                        th.env = env;
                        return vec![th];
                    }
                    let shared = !rd;
                    let occ = Self::decide(&mut th, *line, 0, shared);
                    th.occ.insert(*line, occ + 1);
                    let mut alt = th.clone();
                    if let Some(d) = alt.decs.last_mut() {
                        d.choice = 1;
                    }
                    let mut out = self.exec_node(then, th, ni, stack, rd);
                    out.extend(self.exec_node(els, alt, ni, stack, rd));
                    out
                }
            },
            Skel::Match {
                cond, arms, line, ..
            } => {
                if arms.is_empty() {
                    return vec![th];
                }
                let cv = self.eval(cond, &th.env);
                let rd = ctrl_rd || cv.rank_dep();
                if !arms.iter().any(|a| self.has_effect(a, ni)) {
                    let mut env = std::mem::take(&mut th.env);
                    for a in arms {
                        self.havoc(a, &mut env, rd);
                    }
                    th.env = env;
                    return vec![th];
                }
                let shared = !rd;
                let occ = Self::decide(&mut th, *line, 0, shared);
                th.occ.insert(*line, occ + 1);
                let mut out = Vec::new();
                for (k, arm) in arms.iter().enumerate() {
                    let mut fork = if k + 1 == arms.len() {
                        std::mem::take(&mut th)
                    } else {
                        th.clone()
                    };
                    if let Some(d) = fork.decs.last_mut() {
                        d.choice = k;
                    }
                    out.extend(self.exec_node(arm, fork, ni, stack, rd));
                }
                out
            }
            Skel::While { cond, body, line } => {
                let mut done = Vec::new();
                let mut active = vec![th];
                let mut iters = 0usize;
                while !active.is_empty() {
                    iters += 1;
                    if iters > MAX_ITERS {
                        self.capped = true;
                        done.extend(active);
                        break;
                    }
                    let mut next = Vec::new();
                    for mut th in active {
                        match self.eval(cond, &th.env) {
                            Val::Int { v: 0, .. } => done.push(th),
                            Val::Int { rank_dep, .. } => {
                                for mut r in
                                    self.exec_node(body, th, ni, stack, ctrl_rd || rank_dep)
                                {
                                    match r.flow {
                                        Flow::Broke => {
                                            r.flow = Flow::Normal;
                                            done.push(r);
                                        }
                                        Flow::Returned => done.push(r),
                                        Flow::Continued => {
                                            r.flow = Flow::Normal;
                                            next.push(r);
                                        }
                                        Flow::Normal => next.push(r),
                                    }
                                }
                            }
                            Val::Unk { rank_dep } => {
                                let rd = ctrl_rd || rank_dep;
                                if !self.has_effect(body, ni) {
                                    let mut env = std::mem::take(&mut th.env);
                                    self.havoc(body, &mut env, rd);
                                    th.env = env;
                                    done.push(th);
                                    continue;
                                }
                                let occ = Self::decide(&mut th, *line, 0, !rd);
                                th.occ.insert(*line, occ + 1);
                                for k in 0..=MAX_UNROLL {
                                    let mut fork = if k == MAX_UNROLL {
                                        std::mem::take(&mut th)
                                    } else {
                                        th.clone()
                                    };
                                    if let Some(d) = fork.decs.last_mut() {
                                        d.choice = k;
                                    }
                                    done.extend(self.run_repeat(
                                        body,
                                        vec![fork],
                                        k,
                                        ni,
                                        stack,
                                        rd,
                                    ));
                                }
                            }
                        }
                    }
                    active = next;
                    self.cap_threads(&mut active);
                    self.cap_threads(&mut done);
                }
                done
            }
            Skel::Loop { body, .. } => {
                // Bounded: a loop that survives MAX_UNROLL full iterations
                // without breaking is beyond the model.
                let mut done = Vec::new();
                let mut active = vec![th];
                for _ in 0..MAX_UNROLL {
                    let mut next = Vec::new();
                    for th in active {
                        for mut r in self.exec_node(body, th, ni, stack, ctrl_rd) {
                            match r.flow {
                                Flow::Broke => {
                                    r.flow = Flow::Normal;
                                    done.push(r);
                                }
                                Flow::Returned => done.push(r),
                                Flow::Continued => {
                                    r.flow = Flow::Normal;
                                    next.push(r);
                                }
                                Flow::Normal => next.push(r),
                            }
                        }
                    }
                    active = next;
                    self.cap_threads(&mut active);
                }
                if !active.is_empty() && self.has_effect(body, ni) {
                    self.capped = true;
                }
                done.extend(active);
                done
            }
            Skel::For {
                var,
                range,
                body,
                line,
            } => {
                // Concrete range: iterate it.
                if let ForRange::Range { lo, hi, inclusive } = range {
                    if let (
                        Val::Int {
                            v: lo_v,
                            rank_dep: lrd,
                        },
                        Val::Int {
                            v: hi_v,
                            rank_dep: hrd,
                        },
                    ) = (self.eval(lo, &th.env), self.eval(hi, &th.env))
                    {
                        let hi_v = if *inclusive { hi_v + 1 } else { hi_v };
                        let iter_rd = lrd || hrd || ctrl_rd;
                        let count = (hi_v - lo_v).max(0) as usize;
                        if count > MAX_ITERS {
                            self.capped = true;
                        }
                        let mut ths = vec![th];
                        for (step, v) in (lo_v..hi_v).take(MAX_ITERS).enumerate() {
                            let _ = step;
                            for t in &mut ths {
                                if t.flow == Flow::Normal {
                                    if let Some(name) = var {
                                        t.env.insert(
                                            name.clone(),
                                            Val::Int {
                                                v,
                                                rank_dep: iter_rd,
                                            },
                                        );
                                    }
                                }
                            }
                            ths = self.run_repeat(body, ths, 1, ni, stack, iter_rd);
                            self.cap_threads(&mut ths);
                        }
                        return ths;
                    }
                }
                // Unknown bound / opaque iterable: bounded unroll decision.
                let iter_rd = match range {
                    ForRange::Range { lo, hi, .. } => {
                        self.eval(lo, &th.env).rank_dep() || self.eval(hi, &th.env).rank_dep()
                    }
                    ForRange::Iter(e) => self.eval(e, &th.env).rank_dep(),
                };
                let rd = ctrl_rd || iter_rd;
                if !self.has_effect(body, ni) {
                    let mut env = std::mem::take(&mut th.env);
                    if let Some(name) = var {
                        env.insert(name.clone(), Val::Unk { rank_dep: rd });
                    }
                    self.havoc(body, &mut env, rd);
                    th.env = env;
                    return vec![th];
                }
                if let Some(name) = var {
                    th.env.insert(name.clone(), Val::Unk { rank_dep: rd });
                }
                let occ = Self::decide(&mut th, *line, 0, !rd);
                th.occ.insert(*line, occ + 1);
                let mut out = Vec::new();
                for k in 0..=MAX_UNROLL {
                    let mut fork = if k == MAX_UNROLL {
                        std::mem::take(&mut th)
                    } else {
                        th.clone()
                    };
                    if let Some(d) = fork.decs.last_mut() {
                        d.choice = k;
                    }
                    out.extend(self.run_repeat(body, vec![fork], k, ni, stack, rd));
                }
                out
            }
        }
    }
}

/// Generates the bounded trace set of entry node `ni` at concrete
/// `(rank, p)`. Returns the traces and whether any budget cap was hit.
pub fn gen_traces(
    g: &CallGraph,
    facts: &Facts,
    ni: usize,
    p: usize,
    rank: usize,
) -> (Vec<Trace>, bool) {
    let mut gen = Gen {
        g,
        facts,
        p: p as i64,
        rank: rank as i64,
        capped: false,
        steps: 0,
        skel_cache: BTreeMap::new(),
        effect_memo: BTreeMap::new(),
        target_memo: BTreeMap::new(),
    };
    let skel = g.summary(ni).skeleton.clone();
    let th0 = Th::default();
    let mut stack = vec![ni];
    let ths = gen.exec_node(&skel, th0, ni, &mut stack, false);
    let mut traces: Vec<Trace> = Vec::new();
    for th in ths {
        let t = Trace {
            ops: th.ops,
            decs: th.decs,
        };
        if !traces.contains(&t) {
            traces.push(t);
        }
    }
    (traces, gen.capped)
}

// ---------------------------------------------------------------------------
// Combination enumeration and bounded interleaving simulation
// ---------------------------------------------------------------------------

/// True when two traces agree on every shared decision site they have in
/// common. Shared sites resolve rank-independent state, so a valid SPMD
/// execution must pick the same branch on every rank.
fn compat(a: &Trace, b: &Trace) -> bool {
    for da in a.decs.iter().filter(|d| d.shared) {
        for db in b.decs.iter().filter(|d| d.shared) {
            if da.line == db.line && da.occ == db.occ && da.choice != db.choice {
                return false;
            }
        }
    }
    true
}

/// Enumerates cross-rank trace combinations (one trace per rank) whose
/// shared decisions agree, up to `MAX_COMBOS`. Returns the index tuples and
/// whether the cap truncated the enumeration.
fn combos(per_rank: &[Vec<Trace>]) -> (Vec<Vec<usize>>, bool) {
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut truncated = false;
    fn rec(
        per_rank: &[Vec<Trace>],
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
        truncated: &mut bool,
    ) {
        if out.len() >= MAX_COMBOS {
            *truncated = true;
            return;
        }
        let r = cur.len();
        if r == per_rank.len() {
            out.push(cur.clone());
            return;
        }
        'next: for (i, t) in per_rank[r].iter().enumerate() {
            for (pr, &pi) in cur.iter().enumerate() {
                if !compat(&per_rank[pr][pi], t) {
                    continue 'next;
                }
            }
            cur.push(i);
            rec(per_rank, cur, out, truncated);
            cur.pop();
            if *truncated {
                return;
            }
        }
    }
    rec(per_rank, &mut cur, &mut out, &mut truncated);
    (out, truncated)
}

/// Outcome of simulating one trace combination.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SimOut {
    /// Every rank finished and no buffered message was left unreceived.
    Clean,
    /// Every rank finished but sent messages were never received.
    Leftover(String),
    /// Some interleaving reached a state where no rank can make progress.
    Stuck(String),
    /// State budget exhausted before the space was covered.
    Capped,
}

fn peer_key(p: PeerVal) -> i64 {
    match p {
        PeerVal::Known(v) => v,
        PeerVal::Any => -1,
    }
}

/// Renders a human-readable description of a blocked global state.
fn describe_state(traces: &[&Trace], pcs: &[usize], msgs: &[(usize, i64)]) -> String {
    let mut parts = Vec::new();
    for (r, t) in traces.iter().enumerate() {
        let what = match t.ops.get(pcs[r]) {
            None => "finished".to_string(),
            Some(Op::Coll { kind, line, .. }) => {
                format!("waiting at {kind} collective (line {line})")
            }
            Some(Op::Send { peer, line }) => match peer {
                PeerVal::Known(v) => format!("at send to rank {v} (line {line})"),
                PeerVal::Any => format!("at send to unknown rank (line {line})"),
            },
            Some(Op::Recv { peer, line }) => match peer {
                PeerVal::Known(v) => format!("blocked on recv from rank {v} (line {line})"),
                PeerVal::Any => format!("blocked on recv from unknown rank (line {line})"),
            },
        };
        parts.push(format!("rank {r} {what}"));
    }
    if !msgs.is_empty() {
        let pending: Vec<String> = msgs
            .iter()
            .map(|(from, to)| {
                if *to < 0 {
                    format!("{from}->?")
                } else {
                    format!("{from}->{to}")
                }
            })
            .collect();
        parts.push(format!("undelivered: {}", pending.join(", ")));
    }
    parts.join("; ")
}

/// Exhaustive bounded interleaving of one trace combination under the
/// abstract comm model: eager buffered sends, blocking recvs that branch
/// over every matching buffered message, collectives as global
/// rendezvous requiring kind (and any known tags) to agree across ranks.
fn simulate(traces: &[&Trace], p: usize) -> SimOut {
    // Canonical state: (pcs, sorted message multiset).
    type State = (Vec<usize>, Vec<(usize, i64)>);
    let init: State = (vec![0; p], Vec::new());
    let mut seen: BTreeSet<State> = BTreeSet::new();
    seen.insert(init.clone());
    let mut stack = vec![init];
    let mut budget = SIM_BUDGET;
    let mut stuck: Option<String> = None;
    let mut leftover: Option<String> = None;

    while let Some((mut pcs, mut msgs)) = stack.pop() {
        if budget == 0 {
            return SimOut::Capped;
        }
        budget -= 1;

        // Deterministic closure: drain sends eagerly, complete collective
        // rendezvous when every rank is ready. These commute with
        // everything (sends are non-blocking; a collective can only
        // complete one way), so applying them first is a sound
        // partial-order reduction.
        loop {
            let mut progress = false;
            for r in 0..p {
                while let Some(Op::Send { peer, .. }) = traces[r].ops.get(pcs[r]) {
                    msgs.push((r, peer_key(*peer)));
                    pcs[r] += 1;
                    progress = true;
                }
            }
            let all_at_coll =
                (0..p).all(|r| matches!(traces[r].ops.get(pcs[r]), Some(Op::Coll { .. })));
            if all_at_coll {
                let mut kinds: Vec<&str> = Vec::new();
                let mut known_tag: Option<i64> = None;
                let mut ok = true;
                for r in 0..p {
                    if let Some(Op::Coll { kind, tag, .. }) = traces[r].ops.get(pcs[r]) {
                        kinds.push(kind);
                        if let TagVal::Known(v) = tag {
                            match known_tag {
                                None => known_tag = Some(*v),
                                Some(u) if u != *v => ok = false,
                                _ => {}
                            }
                        }
                    }
                }
                ok = ok && kinds.windows(2).all(|w| w[0] == w[1]);
                if ok {
                    for pc in pcs.iter_mut() {
                        *pc += 1;
                    }
                    progress = true;
                } else {
                    // Mismatched rendezvous: nothing else can move either
                    // (everyone is parked at a collective).
                    stuck.get_or_insert_with(|| {
                        format!(
                            "collective mismatch: {}",
                            describe_state(traces, &pcs, &msgs)
                        )
                    });
                    progress = false;
                }
            }
            if !progress {
                break;
            }
        }

        if (0..p).all(|r| pcs[r] >= traces[r].ops.len()) {
            if msgs.is_empty() {
                return SimOut::Clean;
            }
            leftover.get_or_insert_with(|| describe_state(traces, &pcs, &msgs));
            continue;
        }

        // Branch over receives: each rank blocked on a recv may consume any
        // matching buffered message.
        let mut branched = false;
        for r in 0..p {
            let Some(Op::Recv { peer, .. }) = traces[r].ops.get(pcs[r]) else {
                continue;
            };
            for (mi, (from, dest)) in msgs.iter().enumerate() {
                let dest_ok = *dest == r as i64 || *dest == -1;
                let from_ok = match peer {
                    PeerVal::Known(v) => *v == *from as i64,
                    PeerVal::Any => true,
                };
                if !dest_ok || !from_ok {
                    continue;
                }
                let mut npcs = pcs.clone();
                npcs[r] += 1;
                let mut nmsgs = msgs.clone();
                nmsgs.remove(mi);
                nmsgs.sort_unstable();
                let st = (npcs, nmsgs);
                if seen.insert(st.clone()) {
                    stack.push(st);
                }
                branched = true;
            }
        }
        if !branched {
            // Someone is unfinished, nothing can move: deadlock witness.
            stuck.get_or_insert_with(|| describe_state(traces, &pcs, &msgs));
        }
    }

    if let Some(d) = stuck {
        SimOut::Stuck(d)
    } else if let Some(d) = leftover {
        SimOut::Leftover(d)
    } else {
        // No terminal state at all (empty combo space can't happen: the
        // initial state always terminates somewhere). Defensive.
        SimOut::Capped
    }
}

// ---------------------------------------------------------------------------
// Entry-point verdicts
// ---------------------------------------------------------------------------

/// Result of model-checking one `_dist` entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Some explored execution completes cleanly at every checked `p`.
    Clean,
    /// A budget cap or modeling gap prevented a definitive answer: stay
    /// silent (angelic reporting — only provable divergence is flagged).
    Inconclusive,
    /// Every explored execution at this `p` gets stuck.
    Deadlock { p: usize, detail: String },
    /// Executions finish but leave unreceived messages at this `p`.
    Unmatched { p: usize, detail: String },
}

/// True when `name` is a distributed entry point by naming convention.
pub fn is_dist_entry(name: &str) -> bool {
    name.ends_with("_dist") || name.contains("_dist_")
}

/// Model-checks entry node `ni` at each `p` in [`CHECK_PS`].
///
/// Angelic semantics: a finding is reported only when the trace space was
/// explored without hitting any budget cap AND no interleaving of any
/// compatible trace combination completes cleanly. Any cap anywhere
/// downgrades the whole entry to [`Verdict::Inconclusive`].
pub fn check_entry(g: &CallGraph, facts: &Facts, ni: usize) -> Verdict {
    let mut inconclusive = false;
    for &p in CHECK_PS {
        let mut per_rank: Vec<Vec<Trace>> = Vec::new();
        let mut capped = false;
        for rank in 0..p {
            let (traces, c) = gen_traces(g, facts, ni, p, rank);
            capped |= c;
            per_rank.push(traces);
        }
        if per_rank.iter().any(Vec::is_empty) {
            inconclusive = true;
            continue;
        }
        let (cs, truncated) = combos(&per_rank);
        capped |= truncated;
        if cs.is_empty() {
            // No compatible combination: the shared-decision model is too
            // coarse here, not evidence of a bug.
            inconclusive = true;
            continue;
        }
        let mut clean = false;
        let mut stuck: Option<String> = None;
        let mut leftover: Option<String> = None;
        for combo in &cs {
            let sel: Vec<&Trace> = combo
                .iter()
                .enumerate()
                .map(|(r, &i)| &per_rank[r][i])
                .collect();
            match simulate(&sel, p) {
                SimOut::Clean => {
                    clean = true;
                    break;
                }
                SimOut::Leftover(d) => {
                    leftover.get_or_insert(d);
                }
                SimOut::Stuck(d) => {
                    stuck.get_or_insert(d);
                }
                SimOut::Capped => capped = true,
            }
        }
        if clean {
            continue;
        }
        if capped {
            inconclusive = true;
            continue;
        }
        if let Some(detail) = stuck {
            return Verdict::Deadlock { p, detail };
        }
        if let Some(detail) = leftover {
            return Verdict::Unmatched { p, detail };
        }
        inconclusive = true;
    }
    if inconclusive {
        Verdict::Inconclusive
    } else {
        Verdict::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{propagate, FileSummary};
    use crate::scanner::CodeModel;

    /// Parses the source fragment as an expression (wrapped in a let).
    fn expr_of(src: &str) -> Expr {
        let full = format!("fn f() {{ let x = {src}; }}");
        let m = CodeModel::build(&full);
        let eq = m
            .tokens
            .iter()
            .position(|t| t.is_punct("="))
            .expect("= token");
        let semi = m
            .tokens
            .iter()
            .rposition(|t| t.is_punct(";"))
            .expect("; token");
        parse_expr(&m.tokens, eq + 1, semi)
    }

    fn skel_of(src: &str) -> Skel {
        let m = CodeModel::build(src);
        let (open, close) = m.fns[0].body.expect("fn body");
        extract_fn(&m, open, close)
    }

    /// Flattens a skeleton to its comm-op kinds, ignoring structure.
    fn op_kinds(s: &Skel, out: &mut Vec<String>) {
        match s {
            Skel::Seq(xs) => xs.iter().for_each(|x| op_kinds(x, out)),
            Skel::Coll { kind, .. } => out.push(kind.clone()),
            Skel::Send { .. } => out.push("send".into()),
            Skel::Recv { .. } => out.push("recv".into()),
            Skel::Post { kind, .. } => out.push(format!("post:{kind}")),
            Skel::Wait { .. } => out.push("wait".into()),
            Skel::If { then, els, .. } => {
                op_kinds(then, out);
                op_kinds(els, out);
            }
            Skel::Match { arms, .. } => arms.iter().for_each(|a| op_kinds(a, out)),
            Skel::While { body, .. } | Skel::Loop { body, .. } | Skel::For { body, .. } => {
                op_kinds(body, out)
            }
            _ => {}
        }
    }

    fn kinds(s: &Skel) -> Vec<String> {
        let mut v = Vec::new();
        op_kinds(s, &mut v);
        v
    }

    fn graph_of(files: &[(&str, &str)]) -> (CallGraph, Facts) {
        let summaries = files
            .iter()
            .map(|(p, s)| FileSummary::extract(p, &CodeModel::build(s)))
            .collect();
        let g = CallGraph::build(summaries);
        let f = propagate(&g);
        (g, f)
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("node {name}"))
    }

    #[test]
    fn expr_parser_handles_precedence_and_ints() {
        let e = expr_of("1 + 2 * 3");
        assert_eq!(
            eval(&e, &BTreeMap::new(), 0, 4),
            Val::Int {
                v: 7,
                rank_dep: false
            }
        );
        let e = expr_of("(1 + 2) * 3");
        assert_eq!(
            eval(&e, &BTreeMap::new(), 0, 4),
            Val::Int {
                v: 9,
                rank_dep: false
            }
        );
        let e = expr_of("0x10 | 0b1");
        assert_eq!(
            eval(&e, &BTreeMap::new(), 0, 4),
            Val::Int {
                v: 17,
                rank_dep: false
            }
        );
        let e = expr_of("1_000usize");
        assert_eq!(
            eval(&e, &BTreeMap::new(), 0, 4),
            Val::Int {
                v: 1000,
                rank_dep: false
            }
        );
    }

    #[test]
    fn eval_tracks_rank_dependence() {
        let mut env = BTreeMap::new();
        env.insert(
            "rank".to_string(),
            Val::Int {
                v: 2,
                rank_dep: true,
            },
        );
        env.insert(
            "k".to_string(),
            Val::Int {
                v: 5,
                rank_dep: false,
            },
        );
        let e = expr_of("rank + k");
        assert_eq!(
            eval(&e, &env, 0, 4),
            Val::Int {
                v: 7,
                rank_dep: true
            }
        );
        // Unbound rank-named vars are unknown but rank-dependent.
        let e = expr_of("my_rank ^ 1");
        assert!(matches!(
            eval(&e, &BTreeMap::new(), 0, 4),
            Val::Unk { rank_dep: true }
        ));
        // Division by zero degrades to unknown, not a panic.
        let e = expr_of("1 / (k - 5)");
        assert!(matches!(eval(&e, &env, 0, 4), Val::Unk { .. }));
    }

    #[test]
    fn method_rank_and_size_evaluate_concretely() {
        let e = expr_of("comm.rank() & mask");
        let mut env = BTreeMap::new();
        env.insert(
            "mask".to_string(),
            Val::Int {
                v: 1,
                rank_dep: false,
            },
        );
        assert_eq!(
            eval(&e, &env, 3, 4),
            Val::Int {
                v: 1,
                rank_dep: true
            }
        );
        let e = expr_of("comm.size() - 1");
        assert_eq!(
            eval(&e, &env, 3, 4),
            Val::Int {
                v: 3,
                rank_dep: false
            }
        );
    }

    #[test]
    fn extraction_captures_comm_ops_in_order() {
        let s = skel_of(
            "fn f(comm: &C) {\n    comm.barrier();\n    comm.send(1, buf);\n    let q = comm.recv(0);\n    comm.allreduce_sum(&mut x);\n}\n",
        );
        assert_eq!(kinds(&s), vec!["barrier", "send", "recv", "allreduce_sum"]);
    }

    #[test]
    fn extraction_marks_rank_conditionals() {
        let s = skel_of(
            "fn f(comm: &C) {\n    let rank = comm.rank();\n    if rank == 0 {\n        comm.send(1, b);\n    } else {\n        let q = comm.recv(0);\n    }\n}\n",
        );
        let Skel::Seq(stmts) = &s else { panic!("seq") };
        let iff = stmts
            .iter()
            .find(|n| matches!(n, Skel::If { .. }))
            .expect("if node");
        let Skel::If {
            rank_cond,
            then,
            els,
            ..
        } = iff
        else {
            unreachable!()
        };
        assert!(rank_cond);
        assert_eq!(kinds(then), vec!["send"]);
        assert_eq!(kinds(els), vec!["recv"]);
    }

    #[test]
    fn extraction_handles_let_if_and_loops() {
        let s = skel_of(
            "fn f(comm: &C) {\n    let rank = comm.rank();\n    let t = if rank == 0 { x } else { comm.recv(0) };\n    let mut m = 1;\n    while m < p {\n        m <<= 1;\n    }\n    for i in 0..3 {\n        comm.broadcast(0, b);\n    }\n}\n",
        );
        // The if-rhs recv is still recorded (rhs is re-scanned).
        assert_eq!(kinds(&s), vec!["recv", "broadcast"]);
        let Skel::Seq(stmts) = &s else { panic!("seq") };
        assert!(stmts.iter().any(|n| matches!(n, Skel::While { .. })));
        assert!(stmts
            .iter()
            .any(|n| matches!(n, Skel::For { var: Some(v), .. } if v == "i")));
    }

    #[test]
    fn tuple_for_pattern_havocs_bound_names() {
        let s = skel_of(
            "fn f(comm: &C) {\n    for (mask, qc) in combines {\n        comm.send(rank + mask, qc);\n    }\n}\n",
        );
        let Skel::Seq(stmts) = &s else { panic!("seq") };
        let Some(Skel::For { var, body, .. }) =
            stmts.iter().find(|n| matches!(n, Skel::For { .. }))
        else {
            panic!("for node")
        };
        assert!(var.is_none());
        let Skel::Seq(b) = body.as_ref() else {
            panic!()
        };
        assert!(
            matches!(&b[0], Skel::Mut { var, .. } if var == "mask"),
            "pattern idents havocked first: {b:?}"
        );
    }

    #[test]
    fn wire_round_trips_extracted_skeletons() {
        for src in [
            "fn f(comm: &C) { comm.allreduce_sum(&mut x); }",
            "fn f(comm: &C) {\n    let rank = comm.rank();\n    let mut mask = 1;\n    while mask < p {\n        if rank & mask != 0 {\n            comm.send(rank - mask, b);\n            break;\n        }\n        mask <<= 1;\n    }\n}\n",
            "fn f(c: &C) {\n    match c.rank() {\n        0 => c.broadcast(0, b),\n        _ => { let q = c.recv(0); }\n    }\n}\n",
            "fn f(c: &C) {\n    for i in 0..=7 { c.barrier(); }\n    for (a, b) in it { c.send(a, x); }\n    loop { if done { break; } }\n}\n",
            "fn f(c: &C) {\n    let req = c.iallreduce_sum(buf);\n    c.isend(1, buf).wait();\n    let r = c.irecv(0);\n    let g = req.wait();\n    let q = r.wait();\n}\n",
        ] {
            let s = skel_of(src);
            let w = to_wire(&s);
            let back = from_wire(&w).unwrap_or_else(|| panic!("wire parse: {w}"));
            assert_eq!(back, s, "round trip for {src}");
            assert!(!w.contains('\n'), "single line: {w}");
        }
    }

    #[test]
    fn wire_rejects_garbage() {
        assert_eq!(from_wire(""), None);
        assert_eq!(from_wire("(q"), None);
        assert_eq!(from_wire("(zz 1)"), None);
        assert_eq!(from_wire("(q) trailing"), None);
    }

    #[test]
    fn clean_collective_chain_verifies_clean() {
        let (g, f) = graph_of(&[(
            "a.rs",
            "pub fn round_dist(comm: &C) {\n    comm.allreduce_sum(&mut x);\n    comm.broadcast(0, b);\n    comm.barrier();\n}\n",
        )]);
        let v = check_entry(&g, &f, node(&g, "round_dist"));
        assert_eq!(v, Verdict::Clean);
    }

    #[test]
    fn tsqr_shaped_tree_verifies_clean() {
        // The real TSQR shape: binomial upsweep (send up, break / recv and
        // remember), rank-0-rooted downsweep, closing broadcast. The model
        // must find the completing interleaving at every p in {2, 3, 4}.
        let (g, f) = graph_of(&[(
            "a.rs",
            r#"pub fn tsqr_dist(comm: &C) {
    let rank = comm.rank();
    let p = comm.size();
    let mut mask = 1;
    let mut sent_at = 0;
    let mut sent = 0;
    let mut ups = 0;
    while mask < p {
        if rank & mask != 0 {
            comm.send(rank - mask, buf);
            sent_at = mask;
            sent = 1;
            break;
        } else if rank + mask < p {
            let q = comm.recv(rank + mask);
            ups = ups + 1;
        }
        mask <<= 1;
    }
    if rank != 0 {
        let t = comm.recv(rank - sent_at);
    }
    let mut m = mask;
    while m > 0 {
        if rank & m == 0 && rank + m < p {
            if sent == 0 || m < sent_at {
                comm.send(rank + m, buf);
            }
        }
        m = m / 2;
    }
    comm.broadcast(0, buf);
}
"#,
        )]);
        let v = check_entry(&g, &f, node(&g, "tsqr_dist"));
        assert_eq!(v, Verdict::Clean);
    }

    #[test]
    fn extraction_captures_posts_and_waits() {
        let s = skel_of(
            "fn f(comm: &C) {\n    let req = comm.iallreduce_sum(buf);\n    comm.isend(1, b).wait();\n    let r = comm.irecv(0);\n    let g = req.wait();\n    let q = r.wait();\n    let done = req.test();\n}\n",
        );
        assert_eq!(
            kinds(&s),
            vec![
                "post:iallreduce_sum",
                "post:isend",
                "wait",
                "post:irecv",
                "wait",
                "wait",
                "wait"
            ]
        );
    }

    #[test]
    fn argful_wait_is_not_a_request_wait() {
        // `Condvar::wait(guard)` takes an argument: generic call, not Wait.
        let s = skel_of("fn f(c: &C) {\n    cv.wait(guard);\n}\n");
        assert_eq!(kinds(&s), Vec::<String>::new());
    }

    #[test]
    fn pipelined_allreduce_chain_verifies_clean() {
        // Two posts in flight, waits in post order, closing broadcast: the
        // deferred rendezvous must line up across ranks at every checked p.
        let (g, f) = graph_of(&[(
            "a.rs",
            "pub fn pipeline_dist(comm: &C) {\n    let first = comm.iallreduce_sum(buf);\n    let second = comm.iallreduce_sum(buf);\n    let g0 = first.wait();\n    let g1 = second.wait();\n    comm.broadcast(0, b);\n}\n",
        )]);
        let v = check_entry(&g, &f, node(&g, "pipeline_dist"));
        assert_eq!(v, Verdict::Clean);
    }

    #[test]
    fn preposted_irecv_ring_is_clean() {
        // The blocking version of this ring (recv posted first on every
        // rank) is the canonical deadlock; pre-posting the receive as an
        // irecv and waiting it *after* the eager isend must verify clean —
        // the whole point of modeling post/wait as deferred rendezvous.
        let (g, f) = graph_of(&[(
            "a.rs",
            "pub fn ring_dist(comm: &C) {\n    let rank = comm.rank();\n    let p = comm.size();\n    let inbound = comm.irecv((rank + p - 1) % p);\n    comm.isend((rank + 1) % p, buf).wait();\n    let got = inbound.wait();\n}\n",
        )]);
        let v = check_entry(&g, &f, node(&g, "ring_dist"));
        assert_eq!(v, Verdict::Clean);
    }

    #[test]
    fn waited_irecv_before_isend_is_deadlock() {
        // Waiting the irecv before anyone isends reconstructs the blocking
        // recv-recv cycle: the deferred Recv is emitted at the early wait
        // site, before any Send exists.
        let (g, f) = graph_of(&[(
            "a.rs",
            "pub fn eager_wait_dist(comm: &C) {\n    let rank = comm.rank();\n    let req = comm.irecv(rank ^ 1);\n    let got = req.wait();\n    comm.isend(rank ^ 1, got).wait();\n}\n",
        )]);
        let v = check_entry(&g, &f, node(&g, "eager_wait_dist"));
        assert!(
            matches!(v, Verdict::Deadlock { p: 2, .. }),
            "irecv waited before the matching isend must deadlock: {v:?}"
        );
    }

    #[test]
    fn blocking_vs_nonblocking_allreduce_mismatch_is_flagged() {
        // The runtime routes i-collectives over a separate channel from the
        // blocking tree, so rank 0 posting `iallreduce_sum` against rank 1's
        // blocking `allreduce_sum` hangs — the model must agree (distinct
        // rendezvous kinds never match).
        let (g, f) = graph_of(&[(
            "a.rs",
            "pub fn mixed_dist(comm: &C) {\n    let rank = comm.rank();\n    if rank == 0 {\n        let r = comm.iallreduce_sum(buf);\n        let g = r.wait();\n    } else {\n        comm.allreduce_sum(buf);\n    }\n}\n",
        )]);
        let v = check_entry(&g, &f, node(&g, "mixed_dist"));
        assert!(
            matches!(v, Verdict::Deadlock { .. }),
            "kind mismatch across the rendezvous must be flagged: {v:?}"
        );
    }

    #[test]
    fn recv_recv_cycle_is_deadlock() {
        let (g, f) = graph_of(&[(
            "a.rs",
            "pub fn exchange_dist(comm: &C) {\n    let rank = comm.rank();\n    let peer = rank ^ 1;\n    let q = comm.recv(peer);\n    comm.send(peer, q);\n}\n",
        )]);
        let v = check_entry(&g, &f, node(&g, "exchange_dist"));
        assert!(
            matches!(v, Verdict::Deadlock { p: 2, .. }),
            "recv-before-send on both ranks must deadlock at p=2: {v:?}"
        );
    }

    #[test]
    fn cross_file_recv_recv_cycle_is_deadlock() {
        // The cycle only exists interprocedurally: the entry receives via a
        // helper in another file, then sends. Requires call inlining.
        let (g, f) = graph_of(&[
            (
                "a.rs",
                "pub fn pull_dist(comm: &C) {\n    let rank = comm.rank();\n    let q = fetch_from(comm, rank ^ 1);\n    comm.send(rank ^ 1, q);\n}\n",
            ),
            (
                "b.rs",
                "pub fn fetch_from(comm: &C, peer: usize) -> Vec<f64> {\n    comm.recv(peer)\n}\n",
            ),
        ]);
        let v = check_entry(&g, &f, node(&g, "pull_dist"));
        assert!(
            matches!(v, Verdict::Deadlock { p: 2, .. }),
            "cross-file recv-recv cycle must deadlock: {v:?}"
        );
    }

    #[test]
    fn collective_count_mismatch_is_flagged() {
        let (g, f) = graph_of(&[(
            "a.rs",
            "pub fn reduce_dist(comm: &C) {\n    let rank = comm.rank();\n    if rank == 0 {\n        comm.allreduce_sum(&mut x);\n        comm.allreduce_sum(&mut x);\n    } else {\n        comm.allreduce_sum(&mut x);\n    }\n}\n",
        )]);
        let v = check_entry(&g, &f, node(&g, "reduce_dist"));
        assert!(
            matches!(v, Verdict::Deadlock { .. }),
            "collective count mismatch strands rank 0: {v:?}"
        );
    }

    #[test]
    fn unreceived_send_is_unmatched() {
        let (g, f) = graph_of(&[(
            "a.rs",
            "pub fn push_dist(comm: &C) {\n    let rank = comm.rank();\n    if rank == 0 {\n        comm.send(1, buf);\n    }\n    comm.barrier();\n}\n",
        )]);
        let v = check_entry(&g, &f, node(&g, "push_dist"));
        assert!(
            matches!(v, Verdict::Unmatched { .. }),
            "send with no matching recv completes but leaves a message: {v:?}"
        );
    }

    #[test]
    fn unknown_branches_stay_inconclusive_not_flagged() {
        // Opaque condition guarding a recv with no visible sender: the
        // model can't prove divergence, so it must stay silent.
        let (g, f) = graph_of(&[(
            "a.rs",
            "pub fn maybe_dist(comm: &C) {\n    let rank = comm.rank();\n    if weather_is_nice() {\n        let q = comm.recv(rank ^ 1);\n        comm.send(rank ^ 1, q);\n    }\n}\n",
        )]);
        let v = check_entry(&g, &f, node(&g, "maybe_dist"));
        // Either clean (both-skip resolution completes) — the angelic
        // reading — but never a reported deadlock.
        assert!(
            matches!(v, Verdict::Clean | Verdict::Inconclusive),
            "unknown branch must not fire: {v:?}"
        );
    }

    #[test]
    fn is_dist_entry_naming() {
        assert!(is_dist_entry("round_dist"));
        assert!(is_dist_entry("tt_dist_gmres"));
        assert!(!is_dist_entry("distance"));
        assert!(!is_dist_entry("round"));
    }
}
