//! Workspace call graph and interprocedural summary propagation
//! (DESIGN.md §10).
//!
//! The per-file passes (DESIGN.md §8) see one [`CodeModel`] at a time, which
//! is exactly why a rank-guarded early return in a *helper*, a `HashMap`
//! iteration three calls below a kernel entry point, or an allocation inside
//! a sweep's inner loop used to slip through. This module lifts the analysis
//! to the workspace level in three layers:
//!
//! 1. **Extraction** — [`FileSummary::extract`] walks a file's `CodeModel`
//!    once and records, per `fn`: every call site (callee name, `::`-path
//!    qualifier, method-ness, enclosing rank-conditional / loop /
//!    rank-guarded-return context) and the function's *direct facts* (issues
//!    a collective, nondeterminism sources, allocating constructs).
//! 2. **Resolution** — [`CallGraph::build`] links call sites to `fn`
//!    definitions by simple name, narrowed by the call's `::` qualifier and
//!    the calling file's `use` paths, then same-file, then same-crate.
//!    Resolution is heuristic (the scanner does not type-check), so its
//!    precision is *auditable*: every call is classified resolved /
//!    ambiguous (edges to all candidates, over-approximating) / external
//!    (no workspace definition), and the counts surface in
//!    `cargo xtask analyze --stats`.
//! 3. **Propagation** — [`propagate`] runs the facts to a fixpoint over the
//!    graph (cycles terminate because facts only ever switch on), so
//!    "transitively issues a collective", "transitively nondeterministic",
//!    and "transitively allocates" become queryable per function, each with
//!    a human-readable call-chain witness for diagnostics.
//!
//! The interprocedural passes (`collective_order`, `determinism`,
//! `alloc_hot_path`) are consumers of this module; see
//! [`crate::passes::GraphPass`].

use std::collections::BTreeMap;

use crate::passes::{rank_conditional_mask, COLLECTIVES};
use crate::scanner::{CodeModel, TokenKind};

/// Identifier prefixes marking *hot-path entry points*: the kernel and
/// rounding functions whose transitive callees must uphold the bitwise
/// determinism contract (DESIGN.md §9) and stay allocation-disciplined.
/// Matching is by name prefix rather than by path so fixtures and future
/// crates participate without configuration; the prefixes are chosen to hit
/// the `tt-linalg` kernel surface and the `tt-core` rounding/orthogonalization
/// sweeps and nothing else.
pub const HOT_ROOT_PREFIXES: &[&str] = &[
    "round_",
    "gram_sweep",
    "tsqr",
    "gemm",
    "syrk",
    "blocked_qr",
    "householder_qr",
    "orthogonalize",
];

/// Buffer-pool methods that are the *sanctioned* allocation surface on hot
/// paths (the `SweepScratch` contract): calling the pool is the fix the
/// `alloc_hot_path` pass asks for, so these calls neither fire nor
/// propagate the allocates fact (the pool's internal warm-up allocation is
/// its documented fallback).
pub const SANCTIONED_POOL_METHODS: &[&str] = &["take", "recycle", "recycle_core"];

/// Name prefix of the runtime-autotune probe functions
/// (`tt_linalg::tune`): the *sanctioned* configuration surface for the
/// determinism contract. The probe reads cache-hierarchy sysfs files and
/// `TT_BLOCK_*`/`TT_PAR_*` environment overrides exactly once per process
/// (memoized behind a `OnceLock`), so its result is a constant of the
/// (machine, environment) configuration — the same status DESIGN.md §9
/// already grants `TT_NUM_THREADS`. Functions matching this prefix neither
/// seed nor export the nondet fact, and their direct reads are not flagged;
/// an identical read *outside* the probe naming convention still fires.
pub const SANCTIONED_TUNE_PREFIX: &str = "tune_probe";

/// Whether `name` belongs to the sanctioned autotune-probe surface.
pub fn is_tune_probe(name: &str) -> bool {
    name.starts_with(SANCTIONED_TUNE_PREFIX)
}

/// Path prefixes whose functions neither seed nor carry the *allocates*
/// fact. The communication layer allocates per message by design (event
/// records, envelopes, reassembly buffers) — that is messaging cost, not
/// kernel hot-loop traffic, and `SweepScratch` was never meant to absorb
/// it; tooling and bench-harness crates are not numeric code at all; and
/// vendored shims mirror external APIs.
pub const ALLOC_FACT_EXEMPT_PREFIXES: &[&str] =
    &["crates/tt-comm", "crates/tt-bench", "vendor", "xtask"];

/// True if `file` lies under an allocates-fact-exempt tree.
pub fn is_alloc_exempt(file: &str) -> bool {
    ALLOC_FACT_EXEMPT_PREFIXES
        .iter()
        .any(|p| file.starts_with(p))
}

/// True if `name` names a hot-path entry point (see [`HOT_ROOT_PREFIXES`]).
pub fn is_hot_root(name: &str) -> bool {
    HOT_ROOT_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee identifier (the ident directly before the `(`).
    pub callee: String,
    /// `::`-path qualifier for path calls (`truncate::gram_truncate(` →
    /// `"truncate"`, `a::b::c(` → `"a::b"`); `None` for bare and method
    /// calls.
    pub qualifier: Option<String>,
    /// True for `.name(` method calls.
    pub is_method: bool,
    /// 1-based source line.
    pub line: usize,
    /// Inside an `if`/`while`/`match` region whose condition mentions a
    /// rank-valued identifier (or a chained `else` of one).
    pub in_rank_cond: bool,
    /// Follows a rank-guarded early `return` in the same function; carries
    /// the return's line for diagnostics.
    pub after_rank_return: Option<usize>,
    /// Inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
}

/// One piece of direct (intra-function) evidence: what was seen and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evidence {
    /// Short description of the construct (`"`HashMap` (nondeterministic
    /// iteration order)"`, `"`Vec::new`"`, ...).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
}

/// Everything the workspace analysis needs to know about one `fn`, with no
/// reference back into the token stream (so summaries serialize into the
/// content-hash cache and the `CodeModel` can be dropped after extraction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSummary {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Direct collective issued (method-call form), if any: first one wins.
    pub collective: Option<Evidence>,
    /// Direct nondeterminism sources (deduplicated per line).
    pub nondet: Vec<Evidence>,
    /// Direct allocating constructs, with loop context.
    pub allocs: Vec<(Evidence, bool)>,
    /// Direct point-to-point op (`.send(` / `.recv(`), if any: first wins.
    /// Fns that *implement* the primitives (send/recv in the name) are
    /// exempt — they are the definition of a p2p op, not a use of one.
    pub p2p: Option<Evidence>,
    /// Whether the fn carries a visibility qualifier (`pub`, `pub(crate)`,
    /// ...). Drives `_dist` entry-point discovery for the skeleton passes.
    pub is_pub: bool,
    /// Abstract communication skeleton of the body (see [`crate::skeleton`]).
    pub skeleton: crate::skeleton::Skel,
}

/// Summary of one source file: its `use`-path import map plus all fn
/// summaries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FileSummary {
    /// Repo-relative path.
    pub path: String,
    /// Imported name → `use` path segments (without the name itself), e.g.
    /// `use crate::round::truncate::gram_truncate;` stores
    /// `gram_truncate → ["crate", "round", "truncate"]`.
    pub uses: BTreeMap<String, Vec<String>>,
    /// All non-test `fn` items, in source order.
    pub fns: Vec<FnSummary>,
    /// Bodyless `pub fn *_dist` declarations (trait methods): named so the
    /// skeleton-coverage stat can report them honestly as uncovered
    /// declarations rather than silently skipping them.
    pub dist_decls: Vec<String>,
}

/// Nondeterminism sources recognized lexically: `(trigger tokens, label)`.
/// The trigger is either a lone identifier or a `prefix::name` pair.
const NONDET_SOURCES: &[(&str, Option<&str>, &str)] = &[
    (
        "HashMap",
        None,
        "`HashMap` (nondeterministic iteration order)",
    ),
    (
        "HashSet",
        None,
        "`HashSet` (nondeterministic iteration order)",
    ),
    (
        "now",
        Some("Instant"),
        "`Instant::now` (wall-clock dependence)",
    ),
    (
        "now",
        Some("SystemTime"),
        "`SystemTime::now` (wall-clock dependence)",
    ),
    (
        "current",
        Some("thread"),
        "`thread::current` (thread identity)",
    ),
    ("ThreadId", None, "`ThreadId` (thread identity)"),
    ("var", Some("env"), "`env::var` (environment dependence)"),
    (
        "var_os",
        Some("env"),
        "`env::var_os` (environment dependence)",
    ),
    (
        "available_parallelism",
        None,
        "`available_parallelism` (hardware-shape dependence)",
    ),
    ("thread_rng", None, "`thread_rng` (unseeded randomness)"),
    ("from_entropy", None, "`from_entropy` (unseeded randomness)"),
];

/// Allocating method calls (`.name(...)` / `.name::<...>` chains).
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect", "clone"];

/// Allocating `Type::ctor` path calls: `(qualifier-last-segment, ctor)`.
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("VecDeque", "new"),
    ("VecDeque", "with_capacity"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("String", "from"),
    ("Box", "new"),
];

/// Allocating macros (`name!`).
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Keywords that can precede a `(` without being a call.
pub(crate) const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "let", "mut", "ref", "move",
    "pub", "use", "mod", "impl", "struct", "enum", "trait", "where", "dyn", "break", "continue",
    "else",
];

impl FileSummary {
    /// Extracts the summary of `path` from its scanned model. Total on
    /// arbitrary input (property-tested with the scanner).
    pub fn extract(path: &str, model: &CodeModel) -> FileSummary {
        let rank_mask = rank_conditional_mask(model);
        let loop_mask = model.loop_mask();
        let toks = &model.tokens;
        let n = toks.len();

        let mut out = FileSummary {
            path: path.to_string(),
            uses: extract_uses(model),
            fns: Vec::new(),
            dist_decls: Vec::new(),
        };

        for f in &model.fns {
            let Some((body_start, body_end)) = f.body else {
                if is_fn_pub(model, f.fn_idx)
                    && crate::skeleton::is_dist_entry(&f.name)
                    && !model.in_test.get(f.fn_idx).copied().unwrap_or(false)
                {
                    out.dist_decls.push(f.name.clone());
                }
                continue;
            };
            if model.in_test.get(f.fn_idx).copied().unwrap_or(false) {
                continue;
            }
            let mut fs = FnSummary {
                name: f.name.clone(),
                line: f.line,
                calls: Vec::new(),
                collective: None,
                nondet: Vec::new(),
                allocs: Vec::new(),
                p2p: None,
                is_pub: is_fn_pub(model, f.fn_idx),
                skeleton: crate::skeleton::extract_fn(model, body_start, body_end),
            };

            // Rank-guarded early-return regions in this fn: past `end`,
            // calls are `after_rank_return` (same shape `rank_collective`
            // detects for direct collectives).
            let mut guard_ends: Vec<(usize, usize)> = Vec::new(); // (end tok, ret line)
            {
                let mut i = body_start;
                while i <= body_end.min(n.saturating_sub(1)) {
                    if rank_mask[i] && toks[i].is_ident("return") && !model.in_test[i] {
                        let mut end = i;
                        while end + 1 < n && rank_mask[end + 1] {
                            end += 1;
                        }
                        guard_ends.push((end, toks[i].line));
                        i = end + 1;
                        continue;
                    }
                    i += 1;
                }
            }

            for i in body_start..=body_end.min(n.saturating_sub(1)) {
                if model.in_test[i] {
                    continue;
                }
                // Only this fn's innermost body (nested fns get their own
                // summary row).
                if model.enclosing_fn(i).map(|g| g.fn_idx) != Some(f.fn_idx) {
                    continue;
                }
                let t = &toks[i];
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let line = t.line;
                let in_loop = loop_mask[i];

                // Nondeterminism sources (not calls — any occurrence).
                for (name, prefix, label) in NONDET_SOURCES {
                    if &t.text != name {
                        continue;
                    }
                    let prefix_ok = match prefix {
                        None => true,
                        Some(p) => i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident(p),
                    };
                    if prefix_ok && !fs.nondet.iter().any(|e| e.line == line && e.what == *label) {
                        fs.nondet.push(Evidence {
                            what: (*label).to_string(),
                            line,
                        });
                    }
                }

                // Allocating macros: `vec!`, `format!`.
                if ALLOC_MACROS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|u| u.is_punct("!"))
                {
                    fs.allocs.push((
                        Evidence {
                            what: format!("`{}!`", t.text),
                            line,
                        },
                        in_loop,
                    ));
                    continue;
                }

                // Calls: ident followed by `(`; `.collect::<_>()` keeps the
                // turbofish between name and paren, so allocating methods
                // are matched on the `.name` shape alone.
                let prev_dot = i > 0 && toks[i - 1].is_punct(".");
                if prev_dot && ALLOC_METHODS.contains(&t.text.as_str()) {
                    fs.allocs.push((
                        Evidence {
                            what: format!("`.{}()`", t.text),
                            line,
                        },
                        in_loop,
                    ));
                    continue;
                }
                if !toks.get(i + 1).is_some_and(|u| u.is_punct("(")) {
                    continue;
                }
                if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
                    continue;
                }
                // The fn's own definition ident.
                if i > 0 && toks[i - 1].is_ident("fn") {
                    continue;
                }

                let after_ret = guard_ends.iter().find(|(end, _)| *end < i).map(|(_, l)| *l);

                if prev_dot {
                    // Method call. (The site below is still recorded for a
                    // collective so `collective_order` reasons about direct
                    // calls uniformly.)
                    if (COLLECTIVES.contains(&t.text.as_str()) || t.text == "iallreduce_sum")
                        && fs.collective.is_none()
                    {
                        fs.collective = Some(Evidence {
                            what: format!("`.{}()`", t.text),
                            line,
                        });
                    }
                    if matches!(t.text.as_str(), "send" | "recv" | "isend" | "irecv")
                        && fs.p2p.is_none()
                        && !is_p2p_backend(&fs.name)
                    {
                        fs.p2p = Some(Evidence {
                            what: format!("`.{}()`", t.text),
                            line,
                        });
                    }
                    fs.calls.push(CallSite {
                        callee: t.text.clone(),
                        qualifier: None,
                        is_method: true,
                        line,
                        in_rank_cond: rank_mask[i],
                        after_rank_return: after_ret,
                        in_loop,
                    });
                    continue;
                }

                // Path call: walk back over `seg ::` pairs.
                let mut qual_segs: Vec<String> = Vec::new();
                let mut j = i;
                while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokenKind::Ident {
                    qual_segs.push(toks[j - 2].text.clone());
                    j -= 2;
                }
                qual_segs.reverse();
                let qualifier = if qual_segs.is_empty() {
                    None
                } else {
                    Some(qual_segs.join("::"))
                };

                // Allocating `Type::ctor` forms.
                if let Some(q) = &qualifier {
                    let last = q.rsplit("::").next().unwrap_or(q);
                    if ALLOC_CTORS
                        .iter()
                        .any(|(ty, ctor)| *ty == last && *ctor == t.text)
                    {
                        fs.allocs.push((
                            Evidence {
                                what: format!("`{last}::{}`", t.text),
                                line,
                            },
                            in_loop,
                        ));
                        continue;
                    }
                }

                // Bare capitalized callees are (almost always) tuple-struct
                // or enum-variant constructors (`Some(x)`, `Restore(prev)`);
                // recording them as calls would flood the unresolved report.
                let bare_ctor =
                    qualifier.is_none() && t.text.chars().next().is_some_and(char::is_uppercase);
                if bare_ctor {
                    continue;
                }

                fs.calls.push(CallSite {
                    callee: t.text.clone(),
                    qualifier,
                    is_method: false,
                    line,
                    in_rank_cond: rank_mask[i],
                    after_rank_return: after_ret,
                    in_loop,
                });
            }
            out.fns.push(fs);
        }
        out
    }
}

/// True when the `fn` at token `fn_idx` carries a visibility qualifier.
/// Scans back over the token forms `pub`, `pub(crate)`, `pub(super)`,
/// `pub(in path)`, and the `const` / `unsafe` / `async` / `extern "C"`
/// qualifiers that may sit between the visibility and the `fn` keyword.
fn is_fn_pub(model: &CodeModel, fn_idx: usize) -> bool {
    let toks = &model.tokens;
    let mut j = fn_idx;
    let mut steps = 0usize;
    while j > 0 && steps < 8 {
        j -= 1;
        steps += 1;
        let t = &toks[j];
        if t.is_ident("pub") {
            return true;
        }
        let transparent = t.is_punct("(")
            || t.is_punct(")")
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_ident("self")
            || t.is_ident("in")
            || t.is_ident("const")
            || t.is_ident("unsafe")
            || t.is_ident("async")
            || t.is_ident("extern")
            || t.kind == TokenKind::Str;
        if !transparent {
            return false;
        }
    }
    false
}

/// Fns that implement the p2p primitives themselves (communicator
/// backends): their `.send(` / `.recv(` bodies define the op rather than
/// use it, so they never seed the p2p fact.
fn is_p2p_backend(name: &str) -> bool {
    name.contains("send") || name.contains("recv")
}

/// Parses `use` declarations into a name → path-segments map. Handles
/// `use a::b::c;`, `use a::b::{c, d as e};` (one group level, the workspace
/// idiom), and ignores globs. Total on malformed input.
fn extract_uses(model: &CodeModel) -> BTreeMap<String, Vec<String>> {
    let toks = &model.tokens;
    let n = toks.len();
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < n {
        if !toks[i].is_ident("use") {
            i += 1;
            continue;
        }
        // Collect the path up to `;`, `{`, or end.
        let mut segs: Vec<String> = Vec::new();
        let mut j = i + 1;
        while j < n {
            let t = &toks[j];
            if t.kind == TokenKind::Ident {
                segs.push(t.text.clone());
                j += 1;
            } else if t.is_punct("::") {
                j += 1;
            } else {
                break;
            }
        }
        match toks.get(j) {
            Some(t) if t.is_punct(";") => {
                // `use a::b::c;` (or `... as alias` — segs then ends with
                // [.., "c", "as", "alias"]; register the alias).
                register_use(&mut out, &segs);
                i = j + 1;
            }
            Some(t) if t.is_punct("{") => {
                let close = model.matching_brace(j);
                let prefix = segs.clone();
                let mut item: Vec<String> = Vec::new();
                for t in toks.iter().take(close.min(n)).skip(j + 1) {
                    if t.kind == TokenKind::Ident {
                        item.push(t.text.clone());
                    } else if t.is_punct(",") {
                        let mut full = prefix.clone();
                        full.append(&mut item);
                        register_use(&mut out, &full);
                    }
                    // `::` inside a group extends the item path; `{` nested
                    // groups degrade gracefully (their idents join the item).
                }
                if !item.is_empty() {
                    let mut full = prefix;
                    full.extend(item);
                    register_use(&mut out, &full);
                }
                i = close + 1;
            }
            _ => i = j + 1,
        }
    }
    out
}

/// Registers one flattened `use` path (`[... , name]` or
/// `[..., name, "as", alias]`) into the import map.
fn register_use(out: &mut BTreeMap<String, Vec<String>>, segs: &[String]) {
    if segs.is_empty() {
        return;
    }
    let (name, path) = match segs {
        [path @ .., n, kw, alias] if kw == "as" => {
            let mut p = path.to_vec();
            p.push(n.clone());
            (alias.clone(), p)
        }
        [path @ .., n] => (n.clone(), path.to_vec()),
        _ => return,
    };
    if name == "self" || name == "*" {
        return;
    }
    out.entry(name).or_insert(path);
}

/// How one call site was linked (see the module docs on auditability).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Unique workspace definition.
    Resolved,
    /// Several candidate definitions — edges to all (over-approximation).
    Ambiguous,
    /// No workspace definition (std / vendored-API surface / primitive).
    External,
}

/// One edge of the call graph: a call site plus its candidate targets.
#[derive(Debug, Clone)]
pub struct Edge {
    /// The originating call site (copied out of the summary).
    pub site: CallSite,
    /// Target node indices (empty for external calls).
    pub targets: Vec<usize>,
    /// Resolution class, for the stats report.
    pub resolution: Resolution,
}

/// One node: a function, identified by summary coordinates.
#[derive(Debug, Clone)]
pub struct Node {
    /// Repo-relative file path.
    pub file: String,
    /// Crate key derived from the path (`crates/tt-core/...` → `tt-core`).
    pub crate_key: String,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Index of the owning [`FileSummary`] in [`CallGraph::files`].
    pub file_idx: usize,
    /// Index of the [`FnSummary`] within that file.
    pub fn_idx: usize,
}

/// The workspace call graph: nodes, per-node out-edges, and the audit
/// counters.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// The input summaries, in file order.
    pub files: Vec<FileSummary>,
    /// All functions.
    pub nodes: Vec<Node>,
    /// Out-edges per node (indexed like `nodes`).
    pub edges: Vec<Vec<Edge>>,
    /// Calls linked to exactly one definition.
    pub resolved_calls: usize,
    /// Calls linked to several candidates (edges to all).
    pub ambiguous_calls: usize,
    /// Calls with no workspace definition.
    pub external_calls: usize,
    /// Ambiguous callee names with their occurrence counts, for the
    /// precision audit in `--stats`.
    pub ambiguous_names: BTreeMap<String, usize>,
}

/// Crate key of a repo-relative path: second component under `crates/` or
/// `vendor/`, first component otherwise (`src` for the root crate,
/// `xtask` for the tooling crate).
pub fn crate_key(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") | Some("vendor") => parts.next().unwrap_or("").to_string(),
        Some(first) => first.to_string(),
        None => String::new(),
    }
}

impl CallGraph {
    /// Builds the graph over `files` (summaries in deterministic file
    /// order).
    pub fn build(files: Vec<FileSummary>) -> CallGraph {
        let mut g = CallGraph {
            files,
            ..CallGraph::default()
        };
        // Node table + name index.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, f) in g.files.iter().enumerate() {
            for (ki, fs) in f.fns.iter().enumerate() {
                let idx = g.nodes.len();
                g.nodes.push(Node {
                    file: f.path.clone(),
                    crate_key: crate_key(&f.path),
                    name: fs.name.clone(),
                    line: fs.line,
                    file_idx: fi,
                    fn_idx: ki,
                });
                by_name
                    .entry(&g.files[fi].fns[ki].name)
                    .or_default()
                    .push(idx);
            }
        }
        // Work around borrowck: collect edges into a side table first.
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); g.nodes.len()];
        for (ni, node_edges) in edges.iter_mut().enumerate() {
            let node = &g.nodes[ni];
            let file = &g.files[node.file_idx];
            let fs = &file.fns[node.fn_idx];
            for site in &fs.calls {
                // Collective primitives are direct evidence, not edges: the
                // backends *implement* the operation, and propagating
                // through them would re-derive what the direct fact states.
                // The nonblocking post is the same primitive surface.
                if COLLECTIVES.contains(&site.callee.as_str()) || site.callee == "iallreduce_sum" {
                    node_edges.push(Edge {
                        site: site.clone(),
                        targets: Vec::new(),
                        resolution: Resolution::External,
                    });
                    continue;
                }
                let empty: Vec<usize> = Vec::new();
                let cands = by_name.get(site.callee.as_str()).unwrap_or(&empty);
                let (targets, resolution) = resolve(&g.nodes, node, file, site, cands);
                match resolution {
                    Resolution::Resolved => g.resolved_calls += 1,
                    Resolution::Ambiguous => {
                        g.ambiguous_calls += 1;
                        *g.ambiguous_names.entry(site.callee.clone()).or_insert(0) += 1;
                    }
                    Resolution::External => g.external_calls += 1,
                }
                node_edges.push(Edge {
                    site: site.clone(),
                    targets,
                    resolution,
                });
            }
        }
        g.edges = edges;
        g
    }

    /// Total number of edges (call sites).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The [`FnSummary`] behind node `ni`.
    pub fn summary(&self, ni: usize) -> &FnSummary {
        &self.files[self.nodes[ni].file_idx].fns[self.nodes[ni].fn_idx]
    }
}

/// Narrows `cands` for one call site. See the module docs for the
/// preference order.
fn resolve(
    nodes: &[Node],
    caller: &Node,
    file: &FileSummary,
    site: &CallSite,
    cands: &[usize],
) -> (Vec<usize>, Resolution) {
    if cands.is_empty() {
        return (Vec::new(), Resolution::External);
    }
    if cands.len() == 1 {
        return (cands.to_vec(), Resolution::Resolved);
    }
    // Hints: the call's `::` qualifier segments plus the file's `use` path
    // for the callee name. A candidate matches a hint set when every
    // plausible module segment appears in its path (crate names with `-`
    // match their `_` form).
    let mut hints: Vec<String> = Vec::new();
    if let Some(q) = &site.qualifier {
        hints.extend(q.split("::").map(str::to_string));
    }
    if let Some(path) = file.uses.get(&site.callee) {
        hints.extend(path.iter().cloned());
    }
    hints.retain(|h| h != "crate" && h != "self" && h != "super" && h != "std");
    if !hints.is_empty() {
        let narrowed: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| {
                hints.iter().all(|h| {
                    let h_dash = h.replace('_', "-");
                    nodes[c].file.split('/').any(|comp| {
                        let stem = comp.strip_suffix(".rs").unwrap_or(comp);
                        stem == h || stem == h_dash
                    }) || nodes[c].crate_key == h_dash
                        || nodes[c].crate_key == *h
                })
            })
            .collect();
        if narrowed.len() == 1 {
            return (narrowed, Resolution::Resolved);
        }
        if !narrowed.is_empty() {
            return pick_local(caller, nodes, narrowed);
        }
    }
    pick_local(caller, nodes, cands.to_vec())
}

/// Same-file, then same-crate preference; ambiguous keeps every candidate
/// in the preferred pool (over-approximation, counted for the audit).
fn pick_local(caller: &Node, nodes: &[Node], pool: Vec<usize>) -> (Vec<usize>, Resolution) {
    let same_file: Vec<usize> = pool
        .iter()
        .copied()
        .filter(|&c| nodes[c].file == caller.file)
        .collect();
    if same_file.len() == 1 {
        return (same_file, Resolution::Resolved);
    }
    if !same_file.is_empty() {
        return (same_file, Resolution::Ambiguous);
    }
    let same_crate: Vec<usize> = pool
        .iter()
        .copied()
        .filter(|&c| nodes[c].crate_key == caller.crate_key)
        .collect();
    if same_crate.len() == 1 {
        return (same_crate, Resolution::Resolved);
    }
    if !same_crate.is_empty() {
        return (same_crate, Resolution::Ambiguous);
    }
    (pool, Resolution::Ambiguous)
}

/// One transitive fact with its human-readable witness chain
/// (`"`a` → `b` → `.allreduce_sum()` (crates/…/gram.rs:141)"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Call-chain description ending in the direct evidence.
    pub chain: String,
    /// Chain length (0 = the fact is direct in this function).
    pub depth: usize,
    /// File holding the direct evidence at the bottom of the chain (lets
    /// passes distinguish same-file helper chains from cross-crate API
    /// calls whose allocation is the API's documented contract).
    pub evidence_file: String,
}

/// Transitive facts per node, computed by [`propagate`].
#[derive(Debug, Default)]
pub struct Facts {
    /// Transitively issues a `Communicator` collective.
    pub collective: Vec<Option<Witness>>,
    /// Transitively hits a nondeterminism source.
    pub nondet: Vec<Option<Witness>>,
    /// Transitively performs a heap allocation (scratch-pool calls exempt,
    /// see [`SANCTIONED_POOL_METHODS`]).
    pub allocates: Vec<Option<Witness>>,
    /// Transitively issues a point-to-point send/recv (backend
    /// implementations exempt at the seed, see `is_p2p_backend`).
    pub p2p: Vec<Option<Witness>>,
}

/// Maximum witness-chain length spelled out in messages; deeper chains are
/// elided with `…` (the fact itself still propagates to any depth).
const MAX_CHAIN: usize = 4;

/// Runs the transitive facts to a fixpoint over the graph. Terminates on cycles
/// because facts only ever switch on (monotone), and is deterministic: the
/// node order is file order and the first witness found is kept.
pub fn propagate(g: &CallGraph) -> Facts {
    let n = g.nodes.len();
    let mut facts = Facts {
        collective: vec![None; n],
        nondet: vec![None; n],
        allocates: vec![None; n],
        p2p: vec![None; n],
    };

    // Seed with direct evidence. Alloc-exempt trees (comm layer, tooling,
    // vendor) never seed the allocates fact, so chains passing through a
    // `send`/`recv`/`record_event` do not taint numeric callers.
    for ni in 0..n {
        let fs = g.summary(ni);
        let seed = |e: &Evidence| Witness {
            chain: format!("{} ({}:{})", e.what, g.nodes[ni].file, e.line),
            depth: 0,
            evidence_file: g.nodes[ni].file.clone(),
        };
        if let Some(e) = &fs.collective {
            facts.collective[ni] = Some(seed(e));
        }
        // The autotune probe's one-shot hardware/environment reads are the
        // sanctioned configuration surface (see [`SANCTIONED_TUNE_PREFIX`]):
        // they never seed the nondet fact.
        if let Some(e) = fs.nondet.first() {
            if !is_tune_probe(&g.nodes[ni].name) {
                facts.nondet[ni] = Some(seed(e));
            }
        }
        if let Some((e, _)) = fs.allocs.first() {
            if !is_alloc_exempt(&g.nodes[ni].file) {
                facts.allocates[ni] = Some(seed(e));
            }
        }
        if let Some(e) = &fs.p2p {
            facts.p2p[ni] = Some(seed(e));
        }
    }

    // Monotone fixpoint. Each iteration can only turn facts on, so at most
    // `n` iterations; in practice the call-depth of the workspace (~5).
    loop {
        let mut changed = false;
        for ni in 0..n {
            for edge in &g.edges[ni] {
                // The scratch pool is the sanctioned allocator: its calls
                // do not propagate the allocates fact. Alloc-exempt nodes
                // do not re-acquire it transitively either (their callees'
                // allocations are still messaging/tooling cost).
                let sanctioned = (edge.site.is_method
                    && SANCTIONED_POOL_METHODS.contains(&edge.site.callee.as_str()))
                    || is_alloc_exempt(&g.nodes[ni].file);
                for &t in &edge.targets {
                    changed |= lift(&mut facts.collective, ni, t, &g.nodes[t].name);
                    changed |= lift(&mut facts.p2p, ni, t, &g.nodes[t].name);
                    // A sanctioned probe never exports nondeterminism to
                    // its callers: whatever it read is memoized into a
                    // process-lifetime constant.
                    if !is_tune_probe(&g.nodes[t].name) {
                        changed |= lift(&mut facts.nondet, ni, t, &g.nodes[t].name);
                    }
                    if !sanctioned {
                        changed |= lift(&mut facts.allocates, ni, t, &g.nodes[t].name);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    facts
}

/// Copies a fact from callee `t` up to caller `ni`, extending the witness
/// chain. Returns true if the caller's fact switched on.
fn lift(slot: &mut [Option<Witness>], ni: usize, t: usize, callee_name: &str) -> bool {
    if ni == t || slot[ni].is_some() {
        return false;
    }
    let Some(w) = slot[t].clone() else {
        return false;
    };
    let chain = if w.depth >= MAX_CHAIN {
        format!("`{callee_name}` → …")
    } else {
        format!("`{callee_name}` → {}", w.chain)
    };
    slot[ni] = Some(Witness {
        chain,
        depth: w.depth + 1,
        evidence_file: w.evidence_file,
    });
    true
}

/// Forward reachability from the hot-path roots ([`is_hot_root`]): for each
/// node, the name of a witnessing root (`None` = not reachable). Roots
/// witness themselves.
pub fn hot_reachability(g: &CallGraph) -> Vec<Option<String>> {
    let n = g.nodes.len();
    let mut witness: Vec<Option<String>> = vec![None; n];
    let mut queue: Vec<usize> = Vec::new();
    for (ni, w) in witness.iter_mut().enumerate() {
        if is_hot_root(&g.nodes[ni].name) {
            *w = Some(g.nodes[ni].name.clone());
            queue.push(ni);
        }
    }
    while let Some(ni) = queue.pop() {
        let root = witness[ni].clone();
        for edge in &g.edges[ni] {
            for &t in &edge.targets {
                if witness[t].is_none() {
                    witness[t] = root.clone();
                    queue.push(t);
                }
            }
        }
    }
    witness
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::CodeModel;

    fn summarize(path: &str, src: &str) -> FileSummary {
        FileSummary::extract(path, &CodeModel::build(src))
    }

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(files.iter().map(|(p, s)| summarize(p, s)).collect())
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("node {name}"))
    }

    #[test]
    fn call_sites_record_context() {
        let s = summarize(
            "a.rs",
            "fn f(comm: &C) {\n    let rank = comm.rank();\n    if rank == 0 { helper(); }\n    for i in 0..3 { other(i); }\n}\n",
        );
        let f = &s.fns[0];
        // `.rank()` is a method call site too.
        let helper = f
            .calls
            .iter()
            .find(|c| c.callee == "helper")
            .expect("helper");
        assert!(helper.in_rank_cond);
        assert!(!helper.in_loop);
        let other = f.calls.iter().find(|c| c.callee == "other").expect("other");
        assert!(other.in_loop);
        assert!(!other.in_rank_cond);
    }

    #[test]
    fn after_rank_return_is_flagged_with_line() {
        let s = summarize(
            "a.rs",
            "fn f(comm: &C) {\n    if comm.rank() > 0 {\n        return;\n    }\n    late();\n}\n",
        );
        let late = s.fns[0]
            .calls
            .iter()
            .find(|c| c.callee == "late")
            .expect("late");
        assert_eq!(late.after_rank_return, Some(3));
    }

    #[test]
    fn direct_facts_are_extracted() {
        let s = summarize(
            "a.rs",
            "fn f(comm: &C) {\n    comm.allreduce_sum(&mut [0.0]);\n    let m = HashMap::new();\n    for _ in 0..2 { let v = Vec::new(); let w = x.to_vec(); }\n}\n",
        );
        let f = &s.fns[0];
        assert!(f.collective.as_ref().is_some_and(|e| e.line == 2));
        assert!(f.nondet.iter().any(|e| e.what.contains("HashMap")));
        let in_loop: Vec<&str> = f
            .allocs
            .iter()
            .filter(|(_, l)| *l)
            .map(|(e, _)| e.what.as_str())
            .collect();
        assert_eq!(in_loop, vec!["`Vec::new`", "`.to_vec()`"]);
    }

    #[test]
    fn use_paths_are_parsed_including_groups_and_aliases() {
        let s = summarize(
            "a.rs",
            "use crate::round::truncate::{gram_truncate, SingularSide};\nuse tt_linalg::gemm_v as gv;\nfn f() {}\n",
        );
        assert_eq!(
            s.uses.get("gram_truncate"),
            Some(&vec![
                "crate".to_string(),
                "round".to_string(),
                "truncate".to_string()
            ])
        );
        assert_eq!(
            s.uses.get("gv"),
            Some(&vec!["tt_linalg".to_string(), "gemm_v".to_string()])
        );
    }

    #[test]
    fn unique_names_resolve_and_unknowns_are_external() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn caller() { helper(); std_only(); }",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        assert_eq!(g.resolved_calls, 1);
        assert_eq!(g.external_calls, 1);
        assert_eq!(g.ambiguous_calls, 0);
        let caller = node(&g, "caller");
        let helper = node(&g, "helper");
        assert!(g.edges[caller]
            .iter()
            .any(|e| e.targets == vec![helper] && e.resolution == Resolution::Resolved));
    }

    #[test]
    fn same_file_beats_cross_file_candidates() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn caller() { dup(); }\nfn dup() {}"),
            ("crates/b/src/lib.rs", "fn dup() {}"),
        ]);
        let caller = node(&g, "caller");
        let local = g
            .nodes
            .iter()
            .position(|n| n.name == "dup" && n.file.starts_with("crates/a"))
            .expect("local dup");
        assert_eq!(g.edges[caller][0].targets, vec![local]);
        assert_eq!(g.edges[caller][0].resolution, Resolution::Resolved);
    }

    #[test]
    fn use_path_narrows_cross_crate_candidates() {
        let g = graph(&[
            (
                "crates/tt-core/src/lib.rs",
                "use tt_linalg::dup;\nfn caller() { dup(); }",
            ),
            ("crates/tt-linalg/src/lib.rs", "fn dup() {}"),
            ("crates/tt-comm/src/lib.rs", "fn dup() {}"),
        ]);
        let caller = node(&g, "caller");
        let want = g
            .nodes
            .iter()
            .position(|n| n.name == "dup" && n.file.contains("tt-linalg"))
            .expect("linalg dup");
        assert_eq!(g.edges[caller][0].targets, vec![want]);
        assert_eq!(g.edges[caller][0].resolution, Resolution::Resolved);
        assert_eq!(g.resolved_calls, 1);
    }

    #[test]
    fn qualifier_narrows_by_module_file_stem() {
        let g = graph(&[
            (
                "crates/tt-core/src/round/mod.rs",
                "fn caller() { truncate::dup(); }",
            ),
            ("crates/tt-core/src/round/truncate.rs", "fn dup() {}"),
            ("crates/tt-core/src/round/qr.rs", "fn dup() {}"),
        ]);
        let caller = node(&g, "caller");
        let want = g
            .nodes
            .iter()
            .position(|n| n.file.ends_with("truncate.rs"))
            .expect("truncate dup");
        assert_eq!(g.edges[caller][0].targets, vec![want]);
    }

    #[test]
    fn ambiguous_calls_edge_to_all_candidates_and_are_counted() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn caller() { dup(); }"),
            ("crates/b/src/lib.rs", "fn dup() {}"),
            ("crates/c/src/lib.rs", "fn dup() {}"),
        ]);
        let caller = node(&g, "caller");
        assert_eq!(g.edges[caller][0].targets.len(), 2);
        assert_eq!(g.edges[caller][0].resolution, Resolution::Ambiguous);
        assert_eq!(g.ambiguous_calls, 1);
        assert_eq!(g.ambiguous_names.get("dup"), Some(&1));
    }

    #[test]
    fn propagation_terminates_on_recursion_and_cycles() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn a(comm: &C) { b(comm); }\nfn b(comm: &C) { a(comm); c(comm); }\nfn c(comm: &C) { comm.barrier(); rec(comm); }\nfn rec(comm: &C) { rec(comm); }\n",
        )]);
        let facts = propagate(&g);
        for f in ["a", "b", "c"] {
            assert!(
                facts.collective[node(&g, f)].is_some(),
                "{f} must transitively issue a collective"
            );
        }
        assert!(facts.collective[node(&g, "rec")].is_none());
        // The witness chain names the path down to the primitive.
        let w = facts.collective[node(&g, "a")].clone().expect("witness");
        assert!(w.chain.contains("`b`"), "chain: {}", w.chain);
        assert!(w.chain.contains("barrier"), "chain: {}", w.chain);
    }

    #[test]
    fn sanctioned_pool_calls_do_not_propagate_allocation() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn hot() { s.take(3, 4); }\nfn take(r: usize, c: usize) { let v = Vec::new(); }\n",
        )]);
        let facts = propagate(&g);
        assert!(facts.allocates[node(&g, "take")].is_some());
        assert!(
            facts.allocates[node(&g, "hot")].is_none(),
            "pool `take` is the sanctioned allocator"
        );
    }

    #[test]
    fn hot_reachability_walks_edges_from_named_roots() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn round_entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn unrelated() { leaf(); }\n",
        )]);
        let w = hot_reachability(&g);
        assert_eq!(w[node(&g, "round_entry")].as_deref(), Some("round_entry"));
        assert_eq!(w[node(&g, "leaf")].as_deref(), Some("round_entry"));
        assert!(w[node(&g, "unrelated")].is_none());
    }

    #[test]
    fn crate_key_covers_all_roots() {
        assert_eq!(crate_key("crates/tt-core/src/lib.rs"), "tt-core");
        assert_eq!(crate_key("vendor/rand/src/lib.rs"), "rand");
        assert_eq!(crate_key("src/lib.rs"), "src");
        assert_eq!(crate_key("xtask/src/lib.rs"), "xtask");
    }
}
