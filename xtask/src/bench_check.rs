//! `cargo xtask bench-check`: the kernel benchmark regression gate.
//!
//! Runs the `kernels_*` pairs from `tt-bench/benches/linalg.rs` (blocked vs
//! reference GEMM/SYRK/QR at the fig2/fig3 calibration sizes) through the
//! criterion shim's `CRITERION_FILTER`/`CRITERION_JSON` hooks, then:
//!
//! 1. **Speedup gate** — the blocked GEMM must be ≥ 1.5× the reference
//!    kernel at the 256³ γ-calibration size (the PR's acceptance bar);
//! 2. **Regression gate** — against the recorded baseline in
//!    `results/BENCH_kernels.json`, any benchmark whose best (min) time got
//!    more than 15% slower fails the check;
//! 3. **Recording** — `--record` (or a missing baseline) rewrites the
//!    baseline file from the current run. Baselines are per-machine: CI runs
//!    with `--record` so a foreign machine's numbers never gate a build.
//!
//! Timing gates on a shared box are noisy: a single criterion run's best
//! time can wander well past 15% under scheduler interference. To keep the
//! gate trustworthy the check re-runs the whole bench suite (up to
//! [`MAX_ATTEMPTS`] times) when a timing gate fails, merges the
//! per-benchmark best times across attempts, and only fails if the merged
//! best still violates a gate — a genuine regression fails every attempt,
//! while a noise spike passes on retry.

use std::path::Path;
use std::process::{Command, ExitCode};

/// One benchmark result, as emitted by the criterion shim and as stored in
/// the baseline file.
#[derive(Debug, Clone)]
struct Entry {
    id: String,
    mean_ns: u128,
    min_ns: u128,
    samples: u64,
}

/// Best-time regression tolerance vs the baseline (1.15 = 15% slower).
const REGRESSION_FACTOR: f64 = 1.15;
/// Required blocked-over-reference GEMM speedup at the calibration size.
const GEMM_SPEEDUP_FLOOR: f64 = 1.5;
/// Required 4-thread-over-1-thread GEMM speedup at 512³, enforced only on
/// machines with at least [`PAR_MIN_HW_THREADS`] hardware threads (forcing
/// 4 pool threads onto fewer cores measures oversubscription, not the
/// parallel layer).
const PAR_GEMM_SPEEDUP_FLOOR: f64 = 2.0;
/// Hardware-thread count below which the parallel speedup floor is skipped.
const PAR_MIN_HW_THREADS: usize = 4;
/// Full bench-suite re-runs allowed before a timing-gate failure is final.
const MAX_ATTEMPTS: usize = 3;

/// The blocked/reference pairs the gate reasons about.
const PAIRS: &[(&str, &str, &str)] = &[
    (
        "gemm 256^3",
        "kernels_gemm_blocked/256",
        "kernels_gemm_reference/256",
    ),
    (
        "syrk 40000x20",
        "kernels_syrk_blocked/40000x20",
        "kernels_syrk_reference/40000x20",
    ),
    (
        "qr 4000x32",
        "kernels_qr_blocked/4000x32",
        "kernels_qr_unblocked/4000x32",
    ),
];

/// The 4-thread/1-thread pairs of the shared-memory parallel layer
/// (`tt_linalg::par`). Only the GEMM pair carries a speedup floor; the rest
/// ride the regression gate via `results/BENCH_kernels_par.json`.
const PAR_PAIRS: &[(&str, &str, &str)] = &[
    (
        "par gemm 512^3",
        "kernels_par_gemm_4t/512",
        "kernels_par_gemm_1t/512",
    ),
    (
        "par syrk 60000x64",
        "kernels_par_syrk_4t/60000x64",
        "kernels_par_syrk_1t/60000x64",
    ),
    (
        "par qr 8000x128",
        "kernels_par_qr_4t/8000x128",
        "kernels_par_qr_1t/8000x128",
    ),
];

/// Id prefix routing an entry to the parallel-layer baseline file.
const PAR_PREFIX: &str = "kernels_par_";

/// Whether this machine has enough hardware threads to make the 4-thread
/// speedup floor meaningful.
fn par_floor_enforceable() -> bool {
    std::thread::available_parallelism()
        .map(|n| n.get() >= PAR_MIN_HW_THREADS)
        .unwrap_or(false)
}

/// Entry point for the `bench-check` subcommand.
pub fn bench_check(repo: &Path, args: &[String]) -> ExitCode {
    let record = args.iter().any(|a| a == "--record");
    let json_path = repo.join("target/bench-kernels.jsonl");
    let baseline_path = repo.join("results/BENCH_kernels.json");
    let baseline_par_path = repo.join("results/BENCH_kernels_par.json");
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .map(|text| parse_entries(&text));
    let baseline_par = std::fs::read_to_string(&baseline_par_path)
        .ok()
        .map(|text| parse_entries(&text));
    let enforce_par = par_floor_enforceable();
    if !enforce_par {
        eprintln!(
            "bench-check: fewer than {PAR_MIN_HW_THREADS} hardware threads; the {PAR_GEMM_SPEEDUP_FLOOR}x parallel GEMM floor is skipped on this machine"
        );
    }

    // Best-of-up-to-MAX_ATTEMPTS: retry the whole suite while a *timing*
    // gate fails, keeping each benchmark's best time across attempts. A
    // structural failure (missing results) never retries.
    let mut merged: Vec<Entry> = Vec::new();
    for attempt in 1..=MAX_ATTEMPTS {
        eprintln!("bench-check: bench attempt {attempt}/{MAX_ATTEMPTS} (criterion shim, kernels_* filter)...");
        let run = match run_benches(repo, &json_path) {
            Ok(run) => run,
            Err(msg) => {
                eprintln!("bench-check FAILURE: {msg}");
                return ExitCode::FAILURE;
            }
        };
        merge_best(&mut merged, run);
        let failures = evaluate(
            &merged,
            baseline.as_deref(),
            baseline_par.as_deref(),
            record,
            enforce_par,
            false,
        );
        if failures.is_empty() || !retryable(&failures) {
            break;
        }
        if attempt < MAX_ATTEMPTS {
            eprintln!(
                "bench-check: timing gate missed on attempt {attempt}; retrying to discount scheduler noise"
            );
        }
    }

    let failures = evaluate(
        &merged,
        baseline.as_deref(),
        baseline_par.as_deref(),
        record,
        enforce_par,
        true,
    );
    if baseline.is_none() && !record {
        eprintln!(
            "bench-check: no baseline at {}; recording one from this run",
            baseline_path.display()
        );
    }
    if baseline_par.is_none() && !record {
        eprintln!(
            "bench-check: no parallel baseline at {}; recording one from this run",
            baseline_par_path.display()
        );
    }

    // Record the baselines when asked to (or when either is missing). The
    // merged results are split by id prefix: `kernels_par_*` entries go to
    // the parallel-layer file, the rest to the serial-kernel file.
    let (par_entries, serial_entries): (Vec<Entry>, Vec<Entry>) = merged
        .iter()
        .cloned()
        .partition(|e| e.id.starts_with(PAR_PREFIX));
    if failures.is_empty() && (record || baseline.is_none() || baseline_par.is_none()) {
        if record {
            eprintln!("bench-check: --record: rewriting baselines");
        }
        for (path, entries) in [
            (&baseline_path, &serial_entries),
            (&baseline_par_path, &par_entries),
        ] {
            if let Err(e) = write_baseline(path, entries) {
                eprintln!("bench-check FAILURE: could not write baseline: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench-check: baseline written to {}", path.display());
        }
    }

    if failures.is_empty() {
        eprintln!("bench-check: all gates passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench-check FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}

/// Runs one filtered pass of the `kernels_*` benches and parses the shim's
/// JSONL output.
fn run_benches(repo: &Path, json_path: &Path) -> Result<Vec<Entry>, String> {
    let _ = std::fs::remove_file(json_path);
    let status = Command::new("cargo")
        .args(["bench", "-p", "tt-bench", "--bench", "linalg"])
        .current_dir(repo)
        .env("CRITERION_FILTER", "kernels_")
        .env("CRITERION_JSON", json_path)
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => return Err(format!("cargo bench exited with {s}")),
        Err(e) => return Err(format!("cargo bench could not run: {e}")),
    }
    let text = std::fs::read_to_string(json_path)
        .map_err(|e| format!("no results at {}: {e}", json_path.display()))?;
    let run = parse_entries(&text);
    if run.is_empty() {
        return Err("bench run produced zero kernels_* results".to_string());
    }
    Ok(run)
}

/// Folds a fresh run into the merged view, keeping each benchmark's best
/// (minimum) mean and min times and accumulating the sample count.
fn merge_best(merged: &mut Vec<Entry>, run: Vec<Entry>) {
    for e in run {
        if let Some(prev) = merged.iter_mut().find(|p| p.id == e.id) {
            prev.min_ns = prev.min_ns.min(e.min_ns);
            prev.mean_ns = prev.mean_ns.min(e.mean_ns);
            prev.samples += e.samples;
        } else {
            merged.push(e);
        }
    }
}

/// A failure set is worth a re-measure only if every entry is a timing gate
/// (speedup floor or baseline regression) — structural problems like missing
/// bench IDs reproduce identically.
fn retryable(failures: &[String]) -> bool {
    failures
        .iter()
        .all(|f| !f.contains("missing bench results"))
}

/// Applies both gates to the (merged) results, returning the failure list.
/// `verbose` controls the per-benchmark report lines; the evaluation itself
/// is pure, so it can run quietly inside the retry loop and verbosely once
/// at the end.
fn evaluate(
    current: &[Entry],
    baseline: Option<&[Entry]>,
    baseline_par: Option<&[Entry]>,
    record: bool,
    enforce_par: bool,
    verbose: bool,
) -> Vec<String> {
    let mut failures: Vec<String> = Vec::new();

    // 1. Blocked-vs-reference speedups (gate on the GEMM pair).
    for &(label, blocked_id, reference_id) in PAIRS {
        match (find(current, blocked_id), find(current, reference_id)) {
            (Some(b), Some(r)) => {
                let speedup = r.min_ns as f64 / b.min_ns.max(1) as f64;
                if verbose {
                    eprintln!(
                        "bench-check: {label:<14} blocked {:>12} ns  reference {:>12} ns  speedup {speedup:.2}x",
                        b.min_ns, r.min_ns
                    );
                }
                if label.starts_with("gemm") && speedup < GEMM_SPEEDUP_FLOOR {
                    failures.push(format!(
                        "blocked GEMM speedup {speedup:.2}x is below the {GEMM_SPEEDUP_FLOOR}x floor at the calibration size"
                    ));
                }
            }
            _ => failures.push(format!(
                "missing bench results for {label} ({blocked_id} / {reference_id})"
            )),
        }
    }

    // 2. Parallel-layer 4-thread-over-1-thread speedups. The GEMM floor is
    //    hardware-gated: on a box with < 4 hardware threads the forced
    //    4-thread pool measures oversubscription, so only report.
    for &(label, par_id, serial_id) in PAR_PAIRS {
        match (find(current, par_id), find(current, serial_id)) {
            (Some(p), Some(s)) => {
                let speedup = s.min_ns as f64 / p.min_ns.max(1) as f64;
                if verbose {
                    eprintln!(
                        "bench-check: {label:<18} 4t {:>12} ns  1t {:>12} ns  speedup {speedup:.2}x{}",
                        p.min_ns,
                        s.min_ns,
                        if enforce_par { "" } else { "  (floor skipped)" }
                    );
                }
                if enforce_par && label.starts_with("par gemm") && speedup < PAR_GEMM_SPEEDUP_FLOOR
                {
                    failures.push(format!(
                        "parallel GEMM speedup {speedup:.2}x at 4 threads is below the {PAR_GEMM_SPEEDUP_FLOOR}x floor at 512^3"
                    ));
                }
            }
            _ => failures.push(format!(
                "missing bench results for {label} ({par_id} / {serial_id})"
            )),
        }
    }

    // 3. Regression gate vs the recorded baselines (skipped when
    //    recording). Each entry checks against the baseline file it is
    //    recorded in: `kernels_par_*` ids against the parallel baseline.
    if !record {
        for cur in current {
            let base_for_id = if cur.id.starts_with(PAR_PREFIX) {
                baseline_par
            } else {
                baseline
            };
            let Some(prev) = base_for_id.and_then(|base| find(base, &cur.id)) else {
                if verbose {
                    eprintln!("bench-check: {} has no baseline entry (new bench)", cur.id);
                }
                continue;
            };
            let limit = prev.min_ns as f64 * REGRESSION_FACTOR;
            if cur.min_ns as f64 > limit {
                failures.push(format!(
                    "{}: min {} ns regressed >{:.0}% over baseline {} ns",
                    cur.id,
                    cur.min_ns,
                    (REGRESSION_FACTOR - 1.0) * 100.0,
                    prev.min_ns
                ));
            } else if verbose {
                eprintln!(
                    "bench-check: {:<40} min {:>12} ns  baseline {:>12} ns  ok",
                    cur.id, cur.min_ns, prev.min_ns
                );
            }
        }
    }

    failures
}

/// Parses every line carrying an `"id"` key — both the shim's JSONL stream
/// and the baseline file (one entry object per line) use the same shape.
fn parse_entries(text: &str) -> Vec<Entry> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(id) = extract_str(line, "id") else {
            continue;
        };
        let (Some(mean_ns), Some(min_ns)) =
            (extract_u128(line, "mean_ns"), extract_u128(line, "min_ns"))
        else {
            continue;
        };
        let samples = extract_u128(line, "samples").unwrap_or(0) as u64;
        out.push(Entry {
            id,
            mean_ns,
            min_ns,
            samples,
        });
    }
    out
}

fn find<'a>(entries: &'a [Entry], id: &str) -> Option<&'a Entry> {
    entries.iter().find(|e| e.id == id)
}

/// Extracts a `"key":"value"` string field from a single JSON line. Good
/// enough for the shim's own output (ids never contain escaped quotes).
fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts a `"key":number` field from a single JSON line.
fn extract_u128(line: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Writes the baseline as a JSON array with one entry object per line, so
/// the same line parser reads it back.
fn write_baseline(path: &Path, entries: &[Entry]) -> Result<(), std::io::Error> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut text = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        text.push_str(&format!(
            "{{\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}{comma}\n",
            e.id, e.mean_ns, e.min_ns, e.samples
        ));
    }
    text.push_str("]\n");
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shim_jsonl() {
        let text = "{\"id\":\"kernels_gemm_blocked/256\",\"mean_ns\":1200,\"min_ns\":1000,\"samples\":10}\nnot json\n{\"id\":\"x\",\"mean_ns\":5,\"min_ns\":4,\"samples\":1}\n";
        let entries = parse_entries(text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "kernels_gemm_blocked/256");
        assert_eq!(entries[0].min_ns, 1000);
        assert_eq!(entries[1].samples, 1);
    }

    #[test]
    fn baseline_round_trips() {
        let entries = vec![
            Entry {
                id: "a/1".to_string(),
                mean_ns: 10,
                min_ns: 9,
                samples: 3,
            },
            Entry {
                id: "b/2".to_string(),
                mean_ns: 20,
                min_ns: 18,
                samples: 4,
            },
        ];
        let dir = std::env::temp_dir().join(format!("bench-check-{}", std::process::id()));
        let path = dir.join("BENCH_kernels.json");
        write_baseline(&path, &entries)
            .map_err(|e| e.to_string())
            .ok();
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        let _ = std::fs::remove_dir_all(&dir);
        let back = parse_entries(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].id, "b/2");
        assert_eq!(back[1].min_ns, 18);
    }

    #[test]
    fn extractors_reject_missing_keys() {
        assert_eq!(extract_str("{\"a\":1}", "id"), None);
        assert_eq!(extract_u128("{\"id\":\"x\"}", "min_ns"), None);
    }

    fn entry(id: &str, mean_ns: u128, min_ns: u128) -> Entry {
        Entry {
            id: id.to_string(),
            mean_ns,
            min_ns,
            samples: 10,
        }
    }

    #[test]
    fn merge_keeps_best_times_across_attempts() {
        let mut merged = vec![entry("a", 120, 100), entry("b", 220, 200)];
        merge_best(
            &mut merged,
            vec![entry("a", 90, 80), entry("b", 300, 260), entry("c", 50, 40)],
        );
        assert_eq!(merged.len(), 3);
        let a = find(&merged, "a").map(|e| (e.mean_ns, e.min_ns, e.samples));
        assert_eq!(a, Some((90, 80, 20)));
        let b = find(&merged, "b").map(|e| e.min_ns);
        assert_eq!(b, Some(200));
        let c = find(&merged, "c").map(|e| e.min_ns);
        assert_eq!(c, Some(40));
    }

    #[test]
    fn timing_failures_retry_but_structural_ones_do_not() {
        assert!(retryable(&[
            "x: min 10 ns regressed >15% over baseline 8 ns".to_string()
        ]));
        assert!(retryable(&[
            "blocked GEMM speedup 1.40x is below the 1.5x floor at the calibration size"
                .to_string()
        ]));
        assert!(!retryable(&[
            "missing bench results for gemm 256^3 (a / b)".to_string()
        ]));
        assert!(retryable(&[]));
    }

    /// A full result set covering every serial and parallel pair, with a
    /// comfortably passing 4-thread GEMM speedup (2.5x).
    fn full_current() -> Vec<Entry> {
        vec![
            entry("kernels_gemm_blocked/256", 120, 100),
            entry("kernels_gemm_reference/256", 240, 200),
            entry("kernels_syrk_blocked/40000x20", 120, 100),
            entry("kernels_syrk_reference/40000x20", 150, 130),
            entry("kernels_qr_blocked/4000x32", 120, 100),
            entry("kernels_qr_unblocked/4000x32", 130, 110),
            entry("kernels_par_gemm_4t/512", 500, 400),
            entry("kernels_par_gemm_1t/512", 1200, 1000),
            entry("kernels_par_syrk_4t/60000x64", 300, 250),
            entry("kernels_par_syrk_1t/60000x64", 700, 600),
            entry("kernels_par_qr_4t/8000x128", 900, 800),
            entry("kernels_par_qr_1t/8000x128", 1300, 1200),
        ]
    }

    /// Splits a result set the way the recorder does: serial entries vs
    /// `kernels_par_*` entries.
    fn split(entries: &[Entry]) -> (Vec<Entry>, Vec<Entry>) {
        let (par, serial): (Vec<Entry>, Vec<Entry>) = entries
            .iter()
            .cloned()
            .partition(|e| e.id.starts_with(PAR_PREFIX));
        (serial, par)
    }

    #[test]
    fn evaluate_flags_regressions_against_the_baseline() {
        let current = full_current();
        let (serial, par) = split(&current);
        // Same numbers as baseline: everything passes.
        assert!(evaluate(&current, Some(&serial), Some(&par), false, true, false).is_empty());
        // One entry >15% slower than its baseline: exactly one failure.
        let mut slow = current.clone();
        if let Some(e) = slow
            .iter_mut()
            .find(|e| e.id == "kernels_qr_blocked/4000x32")
        {
            e.min_ns = 120;
        }
        let failures = evaluate(&slow, Some(&serial), Some(&par), false, true, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("kernels_qr_blocked/4000x32"));
        // Recording skips the regression gate entirely.
        assert!(evaluate(&slow, Some(&serial), Some(&par), true, true, false).is_empty());
        // A GEMM speedup below the floor fails even with no baseline.
        let mut slow_gemm = current.clone();
        if let Some(e) = slow_gemm
            .iter_mut()
            .find(|e| e.id == "kernels_gemm_blocked/256")
        {
            e.min_ns = 150;
        }
        let failures = evaluate(&slow_gemm, None, None, false, true, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("below the 1.5x floor"));
    }

    #[test]
    fn par_regressions_check_against_the_par_baseline() {
        let current = full_current();
        let (serial, par) = split(&current);
        // A parallel entry regressing is caught via the par baseline...
        let mut slow = current.clone();
        if let Some(e) = slow
            .iter_mut()
            .find(|e| e.id == "kernels_par_syrk_4t/60000x64")
        {
            e.min_ns = 400;
        }
        let failures = evaluate(&slow, Some(&serial), Some(&par), false, true, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("kernels_par_syrk_4t/60000x64"));
        // ...and is invisible to a serial-only baseline (new bench, no gate).
        assert!(evaluate(&slow, Some(&serial), None, false, true, false).is_empty());
    }

    #[test]
    fn par_gemm_floor_is_hardware_gated() {
        // 1.25x at 4 threads: under the 2.0x floor.
        let mut current = full_current();
        if let Some(e) = current
            .iter_mut()
            .find(|e| e.id == "kernels_par_gemm_4t/512")
        {
            e.min_ns = 800;
        }
        let (serial, par) = split(&current);
        let failures = evaluate(&current, Some(&serial), Some(&par), true, true, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("below the 2x floor"));
        // On a small machine (enforce_par = false) the floor is skipped.
        assert!(evaluate(&current, Some(&serial), Some(&par), true, false, false).is_empty());
    }

    #[test]
    fn missing_par_results_are_structural_failures() {
        let current: Vec<Entry> = full_current()
            .into_iter()
            .filter(|e| e.id != "kernels_par_gemm_1t/512")
            .collect();
        let failures = evaluate(&current, None, None, true, false, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing bench results for par gemm 512^3"));
        assert!(!retryable(&failures));
    }
}
