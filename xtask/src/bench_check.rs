//! `cargo xtask bench-check`: the kernel benchmark regression gate.
//!
//! Runs the `kernels_*` pairs from `tt-bench/benches/linalg.rs` (blocked vs
//! reference GEMM/SYRK/QR at the fig2/fig3 calibration sizes) through the
//! criterion shim's `CRITERION_FILTER`/`CRITERION_JSON` hooks, then:
//!
//! 1. **Speedup gate** — the blocked GEMM must be ≥ 1.5× the reference
//!    kernel at the 256³ γ-calibration size (≥ 3× under `--simd`, where the
//!    explicit microkernels raise the bar);
//! 2. **Regression gate** — against the recorded baseline in
//!    `results/BENCH_kernels.json`, any benchmark whose *mean* time got
//!    more than 15% slower fails the check;
//! 3. **Recording** — `--record` (or a missing baseline) rewrites the
//!    baseline file from the current run. Baselines are per-machine: CI runs
//!    with `--record` so a foreign machine's numbers never gate a build.
//!
//! `--simd` reruns the same suite with the nightly-only `simd` cargo feature
//! (RUSTC_BOOTSTRAP=1, plus FMA codegen when the host supports it) against
//! `_simd`-suffixed baseline files, so the scalar and SIMD configurations
//! gate independently. The 3× floor means "the explicit microkernel must be
//! 3× the scalar oracle *as it normally runs*" — but the FMA RUSTFLAGS of a
//! `--simd` build also auto-vectorize the in-run reference kernel, so the
//! floor's denominator is taken from the scalar baseline's reference entry
//! (`results/BENCH_kernels.json`, recorded on the same machine — CI records
//! it in the step before) and falls back to the in-run reference, with a
//! notice, only when no scalar baseline exists.
//!
//! Gate statistics are deliberately split: the **floor** checks (speedup
//! ratios) compare best-observed (`min_ns`) times, which estimate the
//! machine's capability with scheduler noise stripped; the **regression**
//! check compares `mean_ns`, which is what users experience — a change that
//! keeps the best case but fattens the tail should still fail.
//!
//! Timing gates on a shared box are noisy: a single criterion run's best
//! time can wander well past 15% under scheduler interference. To keep the
//! gate trustworthy the check re-runs the whole bench suite (up to
//! [`MAX_ATTEMPTS`] times) when a timing gate fails, merges the
//! per-benchmark best times across attempts, and only fails if the merged
//! best still violates a gate — a genuine regression fails every attempt,
//! while a noise spike passes on retry.

use std::path::Path;
use std::process::{Command, ExitCode};

/// One benchmark result, as emitted by the criterion shim and as stored in
/// the baseline file.
#[derive(Debug, Clone)]
struct Entry {
    id: String,
    mean_ns: u128,
    min_ns: u128,
    samples: u64,
}

/// Mean-time regression tolerance vs the baseline (1.15 = 15% slower).
const REGRESSION_FACTOR: f64 = 1.15;
/// Required blocked-over-reference GEMM speedup at the calibration size.
const GEMM_SPEEDUP_FLOOR: f64 = 1.5;
/// Required blocked-over-reference GEMM speedup under `--simd`: the explicit
/// `std::simd` microkernels must beat the naive loop by a wide margin.
const SIMD_GEMM_SPEEDUP_FLOOR: f64 = 3.0;
/// Required 4-thread-over-1-thread GEMM speedup at 512³, enforced only on
/// machines with at least [`PAR_MIN_HW_THREADS`] hardware threads (forcing
/// 4 pool threads onto fewer cores measures oversubscription, not the
/// parallel layer).
const PAR_GEMM_SPEEDUP_FLOOR: f64 = 1.8;
/// Required 4-thread-over-1-thread SYRK speedup at 60000×64 (same hardware
/// gate): anything below 1.0 means threads made the kernel *slower* — the
/// shared-panel re-packing bug this floor exists to keep fixed.
const PAR_SYRK_SPEEDUP_FLOOR: f64 = 1.0;
/// Hardware-thread count below which the parallel speedup floor is skipped.
const PAR_MIN_HW_THREADS: usize = 4;
/// Full bench-suite re-runs allowed before a timing-gate failure is final.
const MAX_ATTEMPTS: usize = 3;

/// The blocked/reference pairs the gate reasons about.
const PAIRS: &[(&str, &str, &str)] = &[
    (
        "gemm 256^3",
        "kernels_gemm_blocked/256",
        "kernels_gemm_reference/256",
    ),
    (
        "syrk 40000x20",
        "kernels_syrk_blocked/40000x20",
        "kernels_syrk_reference/40000x20",
    ),
    (
        "qr 4000x32",
        "kernels_qr_blocked/4000x32",
        "kernels_qr_unblocked/4000x32",
    ),
];

/// The 4-thread/1-thread pairs of the shared-memory parallel layer
/// (`tt_linalg::par`). Only the GEMM pair carries a speedup floor; the rest
/// ride the regression gate via `results/BENCH_kernels_par.json`.
const PAR_PAIRS: &[(&str, &str, &str)] = &[
    (
        "par gemm 512^3",
        "kernels_par_gemm_4t/512",
        "kernels_par_gemm_1t/512",
    ),
    (
        "par syrk 60000x64",
        "kernels_par_syrk_4t/60000x64",
        "kernels_par_syrk_1t/60000x64",
    ),
    (
        "par qr 8000x128",
        "kernels_par_qr_4t/8000x128",
        "kernels_par_qr_1t/8000x128",
    ),
];

/// Id prefix routing an entry to the parallel-layer baseline file.
const PAR_PREFIX: &str = "kernels_par_";

/// Whether this machine has enough hardware threads to make the 4-thread
/// speedup floor meaningful.
fn par_floor_enforceable() -> bool {
    std::thread::available_parallelism()
        .map(|n| n.get() >= PAR_MIN_HW_THREADS)
        .unwrap_or(false)
}

/// Entry point for the `bench-check` subcommand.
pub fn bench_check(repo: &Path, args: &[String]) -> ExitCode {
    let record = args.iter().any(|a| a == "--record");
    let simd = args.iter().any(|a| a == "--simd");
    let suffix = if simd { "_simd" } else { "" };
    let json_path = repo.join("target/bench-kernels.jsonl");
    let baseline_path = repo.join(format!("results/BENCH_kernels{suffix}.json"));
    let baseline_par_path = repo.join(format!("results/BENCH_kernels_par{suffix}.json"));
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .map(|text| parse_entries(&text));
    let baseline_par = std::fs::read_to_string(&baseline_par_path)
        .ok()
        .map(|text| parse_entries(&text));
    // Under --simd the GEMM floor compares against the *scalar-build*
    // reference time (see the module docs): pull it from the un-suffixed
    // scalar baseline recorded on this machine.
    let scalar_ref_ns = if simd {
        let scalar = std::fs::read_to_string(repo.join("results/BENCH_kernels.json"))
            .ok()
            .map(|text| parse_entries(&text));
        let ns = scalar
            .as_deref()
            .and_then(|es| find(es, "kernels_gemm_reference/256"))
            .map(|e| e.min_ns);
        if ns.is_none() {
            eprintln!(
                "bench-check: no scalar baseline reference for the simd floor; \
                 comparing against the in-run (FMA-compiled) reference instead — \
                 run `cargo xtask bench-check --record` first for the intended gate"
            );
        }
        ns
    } else {
        None
    };
    let enforce_par = par_floor_enforceable();
    if !enforce_par {
        eprintln!(
            "bench-check: fewer than {PAR_MIN_HW_THREADS} hardware threads; the {PAR_GEMM_SPEEDUP_FLOOR}x parallel GEMM floor is skipped on this machine"
        );
    }

    // Best-of-up-to-MAX_ATTEMPTS: retry the whole suite while a *timing*
    // gate fails, keeping each benchmark's best time across attempts. A
    // structural failure (missing results) never retries.
    let mut merged: Vec<Entry> = Vec::new();
    for attempt in 1..=MAX_ATTEMPTS {
        eprintln!(
            "bench-check: bench attempt {attempt}/{MAX_ATTEMPTS} (criterion shim, kernels_* filter{})...",
            if simd { ", simd feature" } else { "" }
        );
        let run = match run_benches(repo, &json_path, simd) {
            Ok(run) => run,
            Err(msg) => {
                eprintln!("bench-check FAILURE: {msg}");
                return ExitCode::FAILURE;
            }
        };
        merge_best(&mut merged, run);
        let failures = evaluate(
            &merged,
            baseline.as_deref(),
            baseline_par.as_deref(),
            record,
            enforce_par,
            simd,
            scalar_ref_ns,
            false,
        );
        if failures.is_empty() || !retryable(&failures) {
            break;
        }
        if attempt < MAX_ATTEMPTS {
            eprintln!(
                "bench-check: timing gate missed on attempt {attempt}; retrying to discount scheduler noise"
            );
        }
    }

    let mut failures = evaluate(
        &merged,
        baseline.as_deref(),
        baseline_par.as_deref(),
        record,
        enforce_par,
        simd,
        scalar_ref_ns,
        true,
    );
    if baseline.is_none() && !record {
        eprintln!(
            "bench-check: no baseline at {}; recording one from this run",
            baseline_path.display()
        );
    }
    if baseline_par.is_none() && !record {
        eprintln!(
            "bench-check: no parallel baseline at {}; recording one from this run",
            baseline_par_path.display()
        );
    }

    // Record the baselines when asked to (or when either is missing). The
    // merged results are split by id prefix: `kernels_par_*` entries go to
    // the parallel-layer file, the rest to the serial-kernel file.
    let (par_entries, serial_entries): (Vec<Entry>, Vec<Entry>) = merged
        .iter()
        .cloned()
        .partition(|e| e.id.starts_with(PAR_PREFIX));
    if failures.is_empty() && (record || baseline.is_none() || baseline_par.is_none()) {
        if record {
            eprintln!("bench-check: --record: rewriting baselines");
        }
        for (path, entries) in [
            (&baseline_path, &serial_entries),
            (&baseline_par_path, &par_entries),
        ] {
            if let Err(e) = write_baseline(path, entries) {
                eprintln!("bench-check FAILURE: could not write baseline: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench-check: baseline written to {}", path.display());
        }
    }

    // 4. Rounding-ablation gate (scalar pass only: the accuracy and rank
    //    gates are build-independent, and one timing baseline per machine is
    //    enough — running it twice would only double CI time).
    if !simd {
        failures.extend(rounding_check(repo, record));
    }

    // 5. Comm/compute overlap gate (scalar pass only, same reasoning): the
    //    pipelined distributed sweep must beat the serial-wait schedule on
    //    machines with enough hardware threads to actually overlap, and
    //    both schedules ride the regression gate everywhere.
    if !simd {
        failures.extend(overlap_check(repo, record, enforce_par));
    }

    if failures.is_empty() {
        eprintln!("bench-check: all gates passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench-check FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}

/// RUSTFLAGS for a `--simd` bench run: enable FMA codegen when the host
/// actually has it (the microkernel's `mul_add` only fuses under
/// `target_feature = "fma"`), otherwise leave codegen alone.
fn simd_rustflags() -> Option<String> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("fma") {
            return Some("-C target-feature=+avx2,+fma".to_string());
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON (including fused multiply-add) is baseline on aarch64.
        return None;
    }
    #[allow(unreachable_code)]
    None
}

/// Runs one filtered pass of the `kernels_*` benches and parses the shim's
/// JSONL output. With `simd` the benches are built with the `simd` cargo
/// feature; `RUSTC_BOOTSTRAP=1` lets the stable toolchain accept the
/// `portable_simd` nightly gate so the check works on either channel.
fn run_benches(repo: &Path, json_path: &Path, simd: bool) -> Result<Vec<Entry>, String> {
    let _ = std::fs::remove_file(json_path);
    let mut cmd = Command::new("cargo");
    cmd.args(["bench", "-p", "tt-bench", "--bench", "linalg"])
        .current_dir(repo)
        .env("CRITERION_FILTER", "kernels_")
        .env("CRITERION_JSON", json_path);
    if simd {
        cmd.args(["--features", "simd"]);
        cmd.env("RUSTC_BOOTSTRAP", "1");
        if let Some(flags) = simd_rustflags() {
            cmd.env("RUSTFLAGS", flags);
        }
    }
    let status = cmd.status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => return Err(format!("cargo bench exited with {s}")),
        Err(e) => return Err(format!("cargo bench could not run: {e}")),
    }
    let text = std::fs::read_to_string(json_path)
        .map_err(|e| format!("no results at {}: {e}", json_path.display()))?;
    let run = parse_entries(&text);
    if run.is_empty() {
        return Err("bench run produced zero kernels_* results".to_string());
    }
    Ok(run)
}

/// Folds a fresh run into the merged view, keeping each benchmark's best
/// (minimum) mean and min times and accumulating the sample count.
fn merge_best(merged: &mut Vec<Entry>, run: Vec<Entry>) {
    for e in run {
        if let Some(prev) = merged.iter_mut().find(|p| p.id == e.id) {
            prev.min_ns = prev.min_ns.min(e.min_ns);
            prev.mean_ns = prev.mean_ns.min(e.mean_ns);
            prev.samples += e.samples;
        } else {
            merged.push(e);
        }
    }
}

/// A failure set is worth a re-measure only if every entry is a timing gate
/// (speedup floor or baseline regression) — structural problems like missing
/// bench IDs reproduce identically.
fn retryable(failures: &[String]) -> bool {
    failures
        .iter()
        .all(|f| !f.contains("missing bench results"))
}

/// Applies both gates to the (merged) results, returning the failure list.
/// `verbose` controls the per-benchmark report lines; the evaluation itself
/// is pure, so it can run quietly inside the retry loop and verbosely once
/// at the end.
#[allow(clippy::too_many_arguments)]
fn evaluate(
    current: &[Entry],
    baseline: Option<&[Entry]>,
    baseline_par: Option<&[Entry]>,
    record: bool,
    enforce_par: bool,
    simd: bool,
    scalar_ref_ns: Option<u128>,
    verbose: bool,
) -> Vec<String> {
    let mut failures: Vec<String> = Vec::new();
    let gemm_floor = if simd {
        SIMD_GEMM_SPEEDUP_FLOOR
    } else {
        GEMM_SPEEDUP_FLOOR
    };

    // 1. Blocked-vs-reference speedups (gate on the GEMM pair). Floors
    //    compare best-observed (min) times: capability, not noise. Under
    //    --simd the GEMM denominator is the scalar-build reference from the
    //    scalar baseline when available (the in-run reference is itself
    //    FMA-auto-vectorized by the simd RUSTFLAGS — see the module docs).
    for &(label, blocked_id, reference_id) in PAIRS {
        match (find(current, blocked_id), find(current, reference_id)) {
            (Some(b), Some(r)) => {
                let is_gemm = label.starts_with("gemm");
                let (ref_ns, ref_tag) = match scalar_ref_ns {
                    Some(ns) if simd && is_gemm => (ns, " (scalar-build)"),
                    _ => (r.min_ns, ""),
                };
                let speedup = ref_ns as f64 / b.min_ns.max(1) as f64;
                if verbose {
                    eprintln!(
                        "bench-check: {label:<14} blocked {:>12} ns  reference {:>12} ns{ref_tag}  speedup {speedup:.2}x",
                        b.min_ns, ref_ns
                    );
                }
                if is_gemm && speedup < gemm_floor {
                    failures.push(format!(
                        "blocked GEMM speedup {speedup:.2}x is below the {gemm_floor}x floor at the calibration size"
                    ));
                }
            }
            _ => failures.push(format!(
                "missing bench results for {label} ({blocked_id} / {reference_id})"
            )),
        }
    }

    // 2. Parallel-layer 4-thread-over-1-thread speedups. The floors are
    //    hardware-gated: on a box with < 4 hardware threads the forced
    //    4-thread pool measures oversubscription, so only report.
    for &(label, par_id, serial_id) in PAR_PAIRS {
        match (find(current, par_id), find(current, serial_id)) {
            (Some(p), Some(s)) => {
                let speedup = s.min_ns as f64 / p.min_ns.max(1) as f64;
                if verbose {
                    eprintln!(
                        "bench-check: {label:<18} 4t {:>12} ns  1t {:>12} ns  speedup {speedup:.2}x{}",
                        p.min_ns,
                        s.min_ns,
                        if enforce_par { "" } else { "  (floor skipped)" }
                    );
                }
                if enforce_par && label.starts_with("par gemm") && speedup < PAR_GEMM_SPEEDUP_FLOOR
                {
                    failures.push(format!(
                        "parallel GEMM speedup {speedup:.2}x at 4 threads is below the {PAR_GEMM_SPEEDUP_FLOOR}x floor at 512^3"
                    ));
                }
                if enforce_par && label.starts_with("par syrk") && speedup < PAR_SYRK_SPEEDUP_FLOOR
                {
                    failures.push(format!(
                        "parallel SYRK at 4 threads is {speedup:.2}x the 1-thread time (below {PAR_SYRK_SPEEDUP_FLOOR}x): threads made it slower at 60000x64"
                    ));
                }
            }
            _ => failures.push(format!(
                "missing bench results for {label} ({par_id} / {serial_id})"
            )),
        }
    }

    // 3. Regression gate vs the recorded baselines (skipped when
    //    recording). Each entry checks against the baseline file it is
    //    recorded in: `kernels_par_*` ids against the parallel baseline.
    //    This gate compares *mean* times — a single lucky sample must not
    //    hide a distribution that got slower, and a single unlucky sample
    //    is already discounted by the best-of-attempts retry loop.
    if !record {
        for cur in current {
            let base_for_id = if cur.id.starts_with(PAR_PREFIX) {
                baseline_par
            } else {
                baseline
            };
            let Some(prev) = base_for_id.and_then(|base| find(base, &cur.id)) else {
                if verbose {
                    eprintln!("bench-check: {} has no baseline entry (new bench)", cur.id);
                }
                continue;
            };
            let limit = prev.mean_ns as f64 * REGRESSION_FACTOR;
            if cur.mean_ns as f64 > limit {
                failures.push(format!(
                    "{}: mean {} ns regressed >{:.0}% over baseline {} ns",
                    cur.id,
                    cur.mean_ns,
                    (REGRESSION_FACTOR - 1.0) * 100.0,
                    prev.mean_ns
                ));
            } else if verbose {
                eprintln!(
                    "bench-check: {:<40} mean {:>12} ns  baseline {:>12} ns  ok",
                    cur.id, cur.mean_ns, prev.mean_ns
                );
            }
        }
    }

    failures
}

/// Parses every line carrying an `"id"` key — both the shim's JSONL stream
/// and the baseline file (one entry object per line) use the same shape.
fn parse_entries(text: &str) -> Vec<Entry> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(id) = extract_str(line, "id") else {
            continue;
        };
        let (Some(mean_ns), Some(min_ns)) =
            (extract_u128(line, "mean_ns"), extract_u128(line, "min_ns"))
        else {
            continue;
        };
        let samples = extract_u128(line, "samples").unwrap_or(0) as u64;
        out.push(Entry {
            id,
            mean_ns,
            min_ns,
            samples,
        });
    }
    out
}

fn find<'a>(entries: &'a [Entry], id: &str) -> Option<&'a Entry> {
    entries.iter().find(|e| e.id == id)
}

/// Extracts a `"key":"value"` string field from a single JSON line. Good
/// enough for the shim's own output (ids never contain escaped quotes).
fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts a `"key":number` field from a single JSON line.
fn extract_u128(line: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

// ---------------------------------------------------------------------------
// Rounding-ablation gate: accuracy × rank × time across the rounding family.
// ---------------------------------------------------------------------------

/// One row of the `rounding_ablation` bench (`tt-bench/src/bin/`): timing
/// plus the achieved relative error, the variant's accuracy bound, and the
/// maximum output rank.
#[derive(Debug, Clone)]
struct RoundingEntry {
    id: String,
    mean_ns: u128,
    min_ns: u128,
    samples: u64,
    rel_err: f64,
    bound: f64,
    max_rank: u64,
}

/// Runs the rounding-family ablation gate: every variant must achieve its
/// accuracy bound (always — accuracy is machine-independent), and against
/// the recorded baseline no variant's rank decision may drift and no mean
/// time may regress more than [`REGRESSION_FACTOR`]. Timing misses retry
/// like the kernel gates; accuracy and rank failures are deterministic
/// (fixed seeds) and fail immediately.
fn rounding_check(repo: &Path, record: bool) -> Vec<String> {
    let json_path = repo.join("target/bench-rounding.jsonl");
    let baseline_path = repo.join("results/BENCH_rounding_ablation.json");
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .map(|text| parse_rounding_entries(&text));
    if baseline.is_none() && !record {
        eprintln!(
            "bench-check: no rounding baseline at {}; recording one from this run",
            baseline_path.display()
        );
    }

    let mut merged: Vec<RoundingEntry> = Vec::new();
    for attempt in 1..=MAX_ATTEMPTS {
        eprintln!("bench-check: rounding ablation attempt {attempt}/{MAX_ATTEMPTS}...");
        let run = match run_rounding_bench(repo, &json_path) {
            Ok(run) => run,
            Err(msg) => return vec![format!("rounding ablation: {msg}")],
        };
        merge_rounding_best(&mut merged, run);
        let failures = evaluate_rounding(&merged, baseline.as_deref(), record, false);
        if failures.is_empty() || !rounding_retryable(&failures) {
            break;
        }
        if attempt < MAX_ATTEMPTS {
            eprintln!(
                "bench-check: rounding timing gate missed on attempt {attempt}; retrying to discount scheduler noise"
            );
        }
    }

    let failures = evaluate_rounding(&merged, baseline.as_deref(), record, true);
    if failures.is_empty() && (record || baseline.is_none()) {
        if let Err(e) = write_rounding_baseline(&baseline_path, &merged) {
            return vec![format!("could not write rounding baseline: {e}")];
        }
        eprintln!(
            "bench-check: rounding baseline written to {}",
            baseline_path.display()
        );
    }
    failures
}

/// Runs the ablation binary once and parses its JSONL output.
fn run_rounding_bench(repo: &Path, json_path: &Path) -> Result<Vec<RoundingEntry>, String> {
    let _ = std::fs::remove_file(json_path);
    let status = Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "tt-bench",
            "--bin",
            "rounding_ablation",
            "--",
            "--json",
        ])
        .arg(json_path)
        .current_dir(repo)
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => return Err(format!("rounding_ablation exited with {s}")),
        Err(e) => return Err(format!("rounding_ablation could not run: {e}")),
    }
    let text = std::fs::read_to_string(json_path)
        .map_err(|e| format!("no results at {}: {e}", json_path.display()))?;
    let run = parse_rounding_entries(&text);
    if run.is_empty() {
        return Err("ablation run produced zero rounding_* results".to_string());
    }
    Ok(run)
}

/// Folds a fresh ablation run into the merged view: best times across
/// attempts; the deterministic fields (error, bound, rank) are identical in
/// every run, so the first sighting stands.
fn merge_rounding_best(merged: &mut Vec<RoundingEntry>, run: Vec<RoundingEntry>) {
    for e in run {
        if let Some(prev) = merged.iter_mut().find(|p| p.id == e.id) {
            prev.min_ns = prev.min_ns.min(e.min_ns);
            prev.mean_ns = prev.mean_ns.min(e.mean_ns);
            prev.samples += e.samples;
        } else {
            merged.push(e);
        }
    }
}

/// Only timing regressions are worth a re-measure; accuracy-bound and
/// rank-drift failures come from seeded, deterministic runs.
fn rounding_retryable(failures: &[String]) -> bool {
    failures.iter().all(|f| f.contains("regressed"))
}

/// Applies the three rounding gates, returning the failure list.
fn evaluate_rounding(
    current: &[RoundingEntry],
    baseline: Option<&[RoundingEntry]>,
    record: bool,
    verbose: bool,
) -> Vec<String> {
    let mut failures = Vec::new();
    for cur in current {
        // Accuracy gate: unconditional. `!(a <= b)` also catches NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the gate
        if !(cur.rel_err <= cur.bound) {
            failures.push(format!(
                "{}: rel error {:.3e} exceeds its accuracy bound {:.3e}",
                cur.id, cur.rel_err, cur.bound
            ));
        }
        if verbose {
            eprintln!(
                "bench-check: {:<26} rel_err {:>9.2e} (bound {:>8.1e})  max rank {:>3}  mean {:>12} ns",
                cur.id, cur.rel_err, cur.bound, cur.max_rank, cur.mean_ns
            );
        }
        if record {
            continue;
        }
        let Some(prev) = baseline.and_then(|base| base.iter().find(|e| e.id == cur.id)) else {
            if verbose {
                eprintln!(
                    "bench-check: {} has no rounding baseline entry (new variant)",
                    cur.id
                );
            }
            continue;
        };
        // Rank gate: the truncation decision is seeded and deterministic;
        // any drift means the algorithm changed behavior, not the machine.
        if cur.max_rank != prev.max_rank {
            failures.push(format!(
                "{}: rank decision changed: max rank {} vs baseline {}",
                cur.id, cur.max_rank, prev.max_rank
            ));
        }
        let limit = prev.mean_ns as f64 * REGRESSION_FACTOR;
        if cur.mean_ns as f64 > limit {
            failures.push(format!(
                "{}: mean {} ns regressed >{:.0}% over baseline {} ns",
                cur.id,
                cur.mean_ns,
                (REGRESSION_FACTOR - 1.0) * 100.0,
                prev.mean_ns
            ));
        }
    }
    failures
}

/// Parses rounding-ablation JSONL (and the baseline file, same shape).
fn parse_rounding_entries(text: &str) -> Vec<RoundingEntry> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(id) = extract_str(line, "id") else {
            continue;
        };
        let (Some(mean_ns), Some(min_ns), Some(rel_err), Some(bound)) = (
            extract_u128(line, "mean_ns"),
            extract_u128(line, "min_ns"),
            extract_f64(line, "rel_err"),
            extract_f64(line, "bound"),
        ) else {
            continue;
        };
        out.push(RoundingEntry {
            id,
            mean_ns,
            min_ns,
            samples: extract_u128(line, "samples").unwrap_or(0) as u64,
            rel_err,
            bound,
            max_rank: extract_u128(line, "max_rank").unwrap_or(0) as u64,
        });
    }
    out
}

/// Extracts a `"key":number` float field (scientific notation included)
/// from a single JSON line.
fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let token: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    token.parse().ok()
}

/// Writes the rounding baseline in the same one-entry-per-line array shape
/// as the kernel baselines.
fn write_rounding_baseline(path: &Path, entries: &[RoundingEntry]) -> Result<(), std::io::Error> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut text = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        text.push_str(&format!(
            "{{\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{},\"rel_err\":{:e},\"bound\":{:e},\"max_rank\":{}}}{comma}\n",
            e.id, e.mean_ns, e.min_ns, e.samples, e.rel_err, e.bound, e.max_rank
        ));
    }
    text.push_str("]\n");
    std::fs::write(path, text)
}

// ---------------------------------------------------------------------------
// Comm/compute overlap gate: pipelined vs serial-wait distributed rounding.
// ---------------------------------------------------------------------------

/// Required pipelined-over-serial speedup of the distributed Gram sweep,
/// enforced only on machines with at least [`PAR_MIN_HW_THREADS`] hardware
/// threads: on fewer cores the thread "ranks" share a core and there is no
/// idle silicon to hide the communication behind — the pipelined schedule
/// legitimately reads ~1.0x (or below, paying the bookkeeping) there.
const OVERLAP_SPEEDUP_FLOOR: f64 = 1.15;

/// Bench ids of the overlap pair, as emitted by `dist_overlap` at P = 4.
const OVERLAP_PIPELINED_ID: &str = "dist_overlap_pipelined/p4";
const OVERLAP_SERIAL_ID: &str = "dist_overlap_serial/p4";

/// Runs the comm/compute overlap gate: the pipelined schedule must clear
/// [`OVERLAP_SPEEDUP_FLOOR`] over serial waits (hardware-gated like the
/// parallel kernel floors), and both schedules check the usual mean-time
/// regression against `results/BENCH_dist_overlap.json`. Timing misses
/// retry like every other gate; the bin itself asserts the two schedules'
/// rank decisions agree, so a divergence fails structurally (non-retryable
/// process error), never silently.
fn overlap_check(repo: &Path, record: bool, enforce_floor: bool) -> Vec<String> {
    let json_path = repo.join("target/bench-overlap.jsonl");
    let baseline_path = repo.join("results/BENCH_dist_overlap.json");
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .map(|text| parse_entries(&text));
    if baseline.is_none() && !record {
        eprintln!(
            "bench-check: no overlap baseline at {}; recording one from this run",
            baseline_path.display()
        );
    }
    if !enforce_floor {
        eprintln!(
            "bench-check: fewer than {PAR_MIN_HW_THREADS} hardware threads; the {OVERLAP_SPEEDUP_FLOOR}x overlap floor is skipped on this machine"
        );
    }

    let mut merged: Vec<Entry> = Vec::new();
    for attempt in 1..=MAX_ATTEMPTS {
        eprintln!("bench-check: dist overlap attempt {attempt}/{MAX_ATTEMPTS}...");
        let run = match run_overlap_bench(repo, &json_path) {
            Ok(run) => run,
            Err(msg) => return vec![format!("dist overlap: {msg}")],
        };
        merge_best(&mut merged, run);
        let failures = evaluate_overlap(&merged, baseline.as_deref(), record, enforce_floor, false);
        if failures.is_empty() || !retryable(&failures) {
            break;
        }
        if attempt < MAX_ATTEMPTS {
            eprintln!(
                "bench-check: overlap timing gate missed on attempt {attempt}; retrying to discount scheduler noise"
            );
        }
    }

    let failures = evaluate_overlap(&merged, baseline.as_deref(), record, enforce_floor, true);
    if failures.is_empty() && (record || baseline.is_none()) {
        if let Err(e) = write_baseline(&baseline_path, &merged) {
            return vec![format!("could not write overlap baseline: {e}")];
        }
        eprintln!(
            "bench-check: overlap baseline written to {}",
            baseline_path.display()
        );
    }
    failures
}

/// Runs the `dist_overlap` binary once and parses its JSONL output.
fn run_overlap_bench(repo: &Path, json_path: &Path) -> Result<Vec<Entry>, String> {
    let _ = std::fs::remove_file(json_path);
    let status = Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "tt-bench",
            "--bin",
            "dist_overlap",
            "--",
            "--json",
        ])
        .arg(json_path)
        .current_dir(repo)
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => return Err(format!("dist_overlap exited with {s}")),
        Err(e) => return Err(format!("dist_overlap could not run: {e}")),
    }
    let text = std::fs::read_to_string(json_path)
        .map_err(|e| format!("no results at {}: {e}", json_path.display()))?;
    let run = parse_entries(&text);
    if run.is_empty() {
        return Err("overlap run produced zero dist_overlap_* results".to_string());
    }
    Ok(run)
}

/// Applies the overlap floor (best-observed times, hardware-gated) and the
/// mean-time regression gate, returning the failure list.
fn evaluate_overlap(
    current: &[Entry],
    baseline: Option<&[Entry]>,
    record: bool,
    enforce_floor: bool,
    verbose: bool,
) -> Vec<String> {
    let mut failures = Vec::new();
    match (
        find(current, OVERLAP_PIPELINED_ID),
        find(current, OVERLAP_SERIAL_ID),
    ) {
        (Some(pipe), Some(serial)) => {
            let speedup = serial.min_ns as f64 / pipe.min_ns.max(1) as f64;
            if verbose {
                eprintln!(
                    "bench-check: dist overlap p4    pipelined {:>12} ns  serial {:>12} ns  speedup {speedup:.2}x{}",
                    pipe.min_ns,
                    serial.min_ns,
                    if enforce_floor { "" } else { "  (floor skipped)" }
                );
            }
            if enforce_floor && speedup < OVERLAP_SPEEDUP_FLOOR {
                failures.push(format!(
                    "pipelined distributed sweep is {speedup:.2}x the serial-wait schedule (below the {OVERLAP_SPEEDUP_FLOOR}x overlap floor at 4 ranks)"
                ));
            }
        }
        _ => failures.push(format!(
            "missing bench results for dist overlap ({OVERLAP_PIPELINED_ID} / {OVERLAP_SERIAL_ID})"
        )),
    }
    if !record {
        for cur in current {
            let Some(prev) = baseline.and_then(|base| find(base, &cur.id)) else {
                if verbose {
                    eprintln!("bench-check: {} has no baseline entry (new bench)", cur.id);
                }
                continue;
            };
            let limit = prev.mean_ns as f64 * REGRESSION_FACTOR;
            if cur.mean_ns as f64 > limit {
                failures.push(format!(
                    "{}: mean {} ns regressed >{:.0}% over baseline {} ns",
                    cur.id,
                    cur.mean_ns,
                    (REGRESSION_FACTOR - 1.0) * 100.0,
                    prev.mean_ns
                ));
            } else if verbose {
                eprintln!(
                    "bench-check: {:<40} mean {:>12} ns  baseline {:>12} ns  ok",
                    cur.id, cur.mean_ns, prev.mean_ns
                );
            }
        }
    }
    failures
}

/// Writes the baseline as a JSON array with one entry object per line, so
/// the same line parser reads it back.
fn write_baseline(path: &Path, entries: &[Entry]) -> Result<(), std::io::Error> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut text = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        text.push_str(&format!(
            "{{\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}{comma}\n",
            e.id, e.mean_ns, e.min_ns, e.samples
        ));
    }
    text.push_str("]\n");
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shim_jsonl() {
        let text = "{\"id\":\"kernels_gemm_blocked/256\",\"mean_ns\":1200,\"min_ns\":1000,\"samples\":10}\nnot json\n{\"id\":\"x\",\"mean_ns\":5,\"min_ns\":4,\"samples\":1}\n";
        let entries = parse_entries(text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "kernels_gemm_blocked/256");
        assert_eq!(entries[0].min_ns, 1000);
        assert_eq!(entries[1].samples, 1);
    }

    #[test]
    fn baseline_round_trips() {
        let entries = vec![
            Entry {
                id: "a/1".to_string(),
                mean_ns: 10,
                min_ns: 9,
                samples: 3,
            },
            Entry {
                id: "b/2".to_string(),
                mean_ns: 20,
                min_ns: 18,
                samples: 4,
            },
        ];
        let dir = std::env::temp_dir().join(format!("bench-check-{}", std::process::id()));
        let path = dir.join("BENCH_kernels.json");
        write_baseline(&path, &entries)
            .map_err(|e| e.to_string())
            .ok();
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        let _ = std::fs::remove_dir_all(&dir);
        let back = parse_entries(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].id, "b/2");
        assert_eq!(back[1].min_ns, 18);
    }

    #[test]
    fn extractors_reject_missing_keys() {
        assert_eq!(extract_str("{\"a\":1}", "id"), None);
        assert_eq!(extract_u128("{\"id\":\"x\"}", "min_ns"), None);
    }

    fn entry(id: &str, mean_ns: u128, min_ns: u128) -> Entry {
        Entry {
            id: id.to_string(),
            mean_ns,
            min_ns,
            samples: 10,
        }
    }

    #[test]
    fn merge_keeps_best_times_across_attempts() {
        let mut merged = vec![entry("a", 120, 100), entry("b", 220, 200)];
        merge_best(
            &mut merged,
            vec![entry("a", 90, 80), entry("b", 300, 260), entry("c", 50, 40)],
        );
        assert_eq!(merged.len(), 3);
        let a = find(&merged, "a").map(|e| (e.mean_ns, e.min_ns, e.samples));
        assert_eq!(a, Some((90, 80, 20)));
        let b = find(&merged, "b").map(|e| e.min_ns);
        assert_eq!(b, Some(200));
        let c = find(&merged, "c").map(|e| e.min_ns);
        assert_eq!(c, Some(40));
    }

    #[test]
    fn timing_failures_retry_but_structural_ones_do_not() {
        assert!(retryable(&[
            "x: min 10 ns regressed >15% over baseline 8 ns".to_string()
        ]));
        assert!(retryable(&[
            "blocked GEMM speedup 1.40x is below the 1.5x floor at the calibration size"
                .to_string()
        ]));
        assert!(!retryable(&[
            "missing bench results for gemm 256^3 (a / b)".to_string()
        ]));
        assert!(retryable(&[]));
    }

    /// A full result set covering every serial and parallel pair, with a
    /// comfortably passing 4-thread GEMM speedup (2.5x).
    fn full_current() -> Vec<Entry> {
        vec![
            entry("kernels_gemm_blocked/256", 120, 100),
            entry("kernels_gemm_reference/256", 240, 200),
            entry("kernels_syrk_blocked/40000x20", 120, 100),
            entry("kernels_syrk_reference/40000x20", 150, 130),
            entry("kernels_qr_blocked/4000x32", 120, 100),
            entry("kernels_qr_unblocked/4000x32", 130, 110),
            entry("kernels_par_gemm_4t/512", 500, 400),
            entry("kernels_par_gemm_1t/512", 1200, 1000),
            entry("kernels_par_syrk_4t/60000x64", 300, 250),
            entry("kernels_par_syrk_1t/60000x64", 700, 600),
            entry("kernels_par_qr_4t/8000x128", 900, 800),
            entry("kernels_par_qr_1t/8000x128", 1300, 1200),
        ]
    }

    /// Splits a result set the way the recorder does: serial entries vs
    /// `kernels_par_*` entries.
    fn split(entries: &[Entry]) -> (Vec<Entry>, Vec<Entry>) {
        let (par, serial): (Vec<Entry>, Vec<Entry>) = entries
            .iter()
            .cloned()
            .partition(|e| e.id.starts_with(PAR_PREFIX));
        (serial, par)
    }

    #[test]
    fn evaluate_flags_regressions_against_the_baseline() {
        let current = full_current();
        let (serial, par) = split(&current);
        // Same numbers as baseline: everything passes.
        assert!(evaluate(
            &current,
            Some(&serial),
            Some(&par),
            false,
            true,
            false,
            None,
            false
        )
        .is_empty());
        // One entry whose mean got >15% slower: exactly one failure.
        let mut slow = current.clone();
        if let Some(e) = slow
            .iter_mut()
            .find(|e| e.id == "kernels_qr_blocked/4000x32")
        {
            e.mean_ns = 150;
        }
        let failures = evaluate(
            &slow,
            Some(&serial),
            Some(&par),
            false,
            true,
            false,
            None,
            false,
        );
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("kernels_qr_blocked/4000x32"));
        // Recording skips the regression gate entirely.
        assert!(evaluate(
            &slow,
            Some(&serial),
            Some(&par),
            true,
            true,
            false,
            None,
            false
        )
        .is_empty());
        // A GEMM speedup below the floor fails even with no baseline.
        let mut slow_gemm = current.clone();
        if let Some(e) = slow_gemm
            .iter_mut()
            .find(|e| e.id == "kernels_gemm_blocked/256")
        {
            e.min_ns = 150;
        }
        let failures = evaluate(&slow_gemm, None, None, false, true, false, None, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("below the 1.5x floor"));
    }

    #[test]
    fn regression_gate_uses_mean_and_floors_use_min() {
        let current = full_current();
        let (serial, par) = split(&current);
        // A fattened tail (mean up 50%, best case unchanged) must fail even
        // though the min is identical to the baseline...
        let mut fat_tail = current.clone();
        if let Some(e) = fat_tail
            .iter_mut()
            .find(|e| e.id == "kernels_syrk_blocked/40000x20")
        {
            e.mean_ns = 180; // baseline mean 120, min unchanged at 100
        }
        let failures = evaluate(
            &fat_tail,
            Some(&serial),
            Some(&par),
            false,
            true,
            false,
            None,
            false,
        );
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("mean 180 ns regressed"));
        // ...while a noisy mean with a healthy min must NOT trip the
        // speedup floor, which reads best-observed times only.
        let mut noisy = current.clone();
        if let Some(e) = noisy
            .iter_mut()
            .find(|e| e.id == "kernels_gemm_blocked/256")
        {
            e.mean_ns = 10_000; // mean-based floor would read 0.02x
        }
        assert!(evaluate(&noisy, None, None, true, true, false, None, false).is_empty());
    }

    #[test]
    fn simd_mode_raises_the_gemm_floor() {
        // 2.0x blocked-over-reference: fine for scalar, under the 3x simd bar.
        let current = full_current();
        assert!(evaluate(&current, None, None, true, true, false, None, false).is_empty());
        let failures = evaluate(&current, None, None, true, true, true, None, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("below the 3x floor"));
        // With a scalar-build reference time from the scalar baseline the
        // denominator switches to it: 350/100 = 3.5x clears the simd floor
        // even though the in-run (auto-vectorized) reference reads 2.0x.
        assert!(evaluate(&current, None, None, true, true, true, Some(350), false).is_empty());
        // ...and a scalar reference that still reads under 3x keeps failing.
        let failures = evaluate(&current, None, None, true, true, true, Some(250), false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("below the 3x floor"));
        // The scalar-ref denominator is simd-only: in scalar mode it is
        // ignored (None is always passed, but guard the contract anyway).
        assert!(evaluate(&current, None, None, true, true, false, Some(10_000), false).is_empty());
    }

    #[test]
    fn par_regressions_check_against_the_par_baseline() {
        let current = full_current();
        let (serial, par) = split(&current);
        // A parallel entry regressing is caught via the par baseline...
        let mut slow = current.clone();
        if let Some(e) = slow
            .iter_mut()
            .find(|e| e.id == "kernels_par_syrk_4t/60000x64")
        {
            e.mean_ns = 400;
        }
        let failures = evaluate(
            &slow,
            Some(&serial),
            Some(&par),
            false,
            true,
            false,
            None,
            false,
        );
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("kernels_par_syrk_4t/60000x64"));
        // ...and is invisible to a serial-only baseline (new bench, no gate).
        assert!(evaluate(&slow, Some(&serial), None, false, true, false, None, false).is_empty());
    }

    #[test]
    fn par_gemm_floor_is_hardware_gated() {
        // 1.25x at 4 threads: under the 1.8x floor.
        let mut current = full_current();
        if let Some(e) = current
            .iter_mut()
            .find(|e| e.id == "kernels_par_gemm_4t/512")
        {
            e.min_ns = 800;
        }
        let (serial, par) = split(&current);
        let failures = evaluate(
            &current,
            Some(&serial),
            Some(&par),
            true,
            true,
            false,
            None,
            false,
        );
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("below the 1.8x floor"));
        // On a small machine (enforce_par = false) the floor is skipped.
        assert!(evaluate(
            &current,
            Some(&serial),
            Some(&par),
            true,
            false,
            false,
            None,
            false
        )
        .is_empty());
    }

    #[test]
    fn par_syrk_slower_than_serial_fails_the_floor() {
        // 4t slower than 1t (0.86x): the regression this PR fixes must
        // never silently return.
        let mut current = full_current();
        if let Some(e) = current
            .iter_mut()
            .find(|e| e.id == "kernels_par_syrk_4t/60000x64")
        {
            e.min_ns = 700; // 1t min is 600
        }
        let failures = evaluate(&current, None, None, true, true, false, None, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("threads made it slower"));
        // Hardware-gated like the GEMM floor.
        assert!(evaluate(&current, None, None, true, false, false, None, false).is_empty());
    }

    fn rounding_entry(
        id: &str,
        mean_ns: u128,
        rel_err: f64,
        bound: f64,
        max_rank: u64,
    ) -> RoundingEntry {
        RoundingEntry {
            id: id.to_string(),
            mean_ns,
            min_ns: mean_ns,
            samples: 12,
            rel_err,
            bound,
            max_rank,
        }
    }

    #[test]
    fn extract_f64_handles_scientific_notation() {
        let line = "{\"id\":\"rounding_qr\",\"mean_ns\":100,\"min_ns\":90,\"samples\":5,\"rel_err\":9.97e-7,\"bound\":1.5e-4,\"max_rank\":12}";
        assert_eq!(extract_f64(line, "rel_err"), Some(9.97e-7));
        assert_eq!(extract_f64(line, "bound"), Some(1.5e-4));
        assert_eq!(extract_f64(line, "missing"), None);
        let entries = parse_rounding_entries(line);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].max_rank, 12);
        assert_eq!(entries[0].rel_err, 9.97e-7);
    }

    #[test]
    fn rounding_accuracy_gate_is_unconditional() {
        // Bound violated: fails even when recording, and even with no
        // baseline — correctness never depends on the machine.
        let bad = vec![rounding_entry("rounding_adaptive_kr", 100, 2e-4, 1e-4, 12)];
        for record in [false, true] {
            let failures = evaluate_rounding(&bad, None, record, false);
            assert_eq!(failures.len(), 1, "record={record}");
            assert!(failures[0].contains("exceeds its accuracy bound"));
            assert!(!rounding_retryable(&failures));
        }
        // NaN errors must not sneak past the comparison.
        let nan = vec![rounding_entry("rounding_qr", 100, f64::NAN, 1e-4, 12)];
        assert_eq!(evaluate_rounding(&nan, None, true, false).len(), 1);
    }

    #[test]
    fn rounding_rank_and_timing_gates_use_the_baseline() {
        let base = vec![
            rounding_entry("rounding_qr", 100, 1e-6, 1.5e-4, 12),
            rounding_entry("rounding_two_sided", 100, 1e-4, 1e-2, 12),
        ];
        // Identical run: clean.
        assert!(evaluate_rounding(&base, Some(&base), false, false).is_empty());
        // A drifted rank decision fails (not retryable)...
        let drift = vec![
            rounding_entry("rounding_qr", 100, 1e-6, 1.5e-4, 13),
            base[1].clone(),
        ];
        let failures = evaluate_rounding(&drift, Some(&base), false, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("rank decision changed"));
        assert!(!rounding_retryable(&failures));
        // ...a slow mean regresses (retryable)...
        let slow = vec![
            rounding_entry("rounding_qr", 200, 1e-6, 1.5e-4, 12),
            base[1].clone(),
        ];
        let failures = evaluate_rounding(&slow, Some(&base), false, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"));
        assert!(rounding_retryable(&failures));
        // ...and recording skips both baseline gates.
        assert!(evaluate_rounding(&slow, Some(&base), true, false).is_empty());
        // An entry with no baseline row is a new variant, not a failure.
        let extra = vec![
            base[0].clone(),
            rounding_entry("rounding_new", 50, 1e-9, 1e-4, 3),
        ];
        assert!(evaluate_rounding(&extra, Some(&base), false, false).is_empty());
    }

    #[test]
    fn rounding_merge_keeps_best_times_and_deterministic_fields() {
        let mut merged = vec![rounding_entry("rounding_qr", 120, 1e-6, 1.5e-4, 12)];
        merge_rounding_best(
            &mut merged,
            vec![
                rounding_entry("rounding_qr", 90, 1e-6, 1.5e-4, 12),
                rounding_entry("rounding_gram_rlr", 70, 1e-6, 1.5e-4, 12),
            ],
        );
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].mean_ns, 90);
        assert_eq!(merged[0].samples, 24);
    }

    #[test]
    fn rounding_baseline_round_trips() {
        let entries = vec![rounding_entry(
            "rounding_adaptive_kr",
            100,
            1.5e-6,
            1e-4,
            12,
        )];
        let dir = std::env::temp_dir().join(format!("bench-check-r-{}", std::process::id()));
        let path = dir.join("BENCH_rounding_ablation.json");
        write_rounding_baseline(&path, &entries)
            .map_err(|e| e.to_string())
            .ok();
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        let _ = std::fs::remove_dir_all(&dir);
        let back = parse_rounding_entries(&text);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].id, "rounding_adaptive_kr");
        assert_eq!(back[0].rel_err, 1.5e-6);
        assert_eq!(back[0].bound, 1e-4);
        assert_eq!(back[0].max_rank, 12);
    }

    /// A passing overlap pair: 1.25x pipelined-over-serial on best times.
    fn overlap_current() -> Vec<Entry> {
        vec![
            entry(OVERLAP_PIPELINED_ID, 900, 800),
            entry(OVERLAP_SERIAL_ID, 1100, 1000),
        ]
    }

    #[test]
    fn overlap_floor_is_hardware_gated() {
        let current = overlap_current();
        assert!(evaluate_overlap(&current, None, true, true, false).is_empty());
        // Pipelined no faster than serial: fails the floor on a big box...
        let mut flat = current.clone();
        if let Some(e) = flat.iter_mut().find(|e| e.id == OVERLAP_PIPELINED_ID) {
            e.min_ns = 1000;
        }
        let failures = evaluate_overlap(&flat, None, true, true, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("below the 1.15x overlap floor"));
        assert!(retryable(&failures));
        // ...and is skipped on a machine without the threads to overlap.
        assert!(evaluate_overlap(&flat, None, true, false, false).is_empty());
    }

    #[test]
    fn overlap_regression_gate_uses_mean_and_respects_record() {
        let base = overlap_current();
        // Identical run: clean even with the floor enforced.
        assert!(evaluate_overlap(&base, Some(&base), false, true, false).is_empty());
        // A fattened pipelined mean regresses against the baseline even
        // though its best time still clears the floor.
        let mut slow = base.clone();
        if let Some(e) = slow.iter_mut().find(|e| e.id == OVERLAP_PIPELINED_ID) {
            e.mean_ns = 1100; // baseline mean 900, min unchanged
        }
        let failures = evaluate_overlap(&slow, Some(&base), false, true, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"));
        // Recording skips the regression gate.
        assert!(evaluate_overlap(&slow, Some(&base), true, true, false).is_empty());
    }

    #[test]
    fn missing_overlap_results_are_structural_failures() {
        let current = vec![entry(OVERLAP_PIPELINED_ID, 900, 800)];
        let failures = evaluate_overlap(&current, None, true, false, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing bench results for dist overlap"));
        assert!(!retryable(&failures));
    }

    #[test]
    fn missing_par_results_are_structural_failures() {
        let current: Vec<Entry> = full_current()
            .into_iter()
            .filter(|e| e.id != "kernels_par_gemm_1t/512")
            .collect();
        let failures = evaluate(&current, None, None, true, false, false, None, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing bench results for par gemm 512^3"));
        assert!(!retryable(&failures));
    }
}
