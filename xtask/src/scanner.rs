//! Shared Rust token scanner for the source-level static analyses.
//!
//! The original `cargo xtask lint` sanitizer worked line-by-line
//! (`strip_comments_and_strings`), which mis-handled exactly the constructs
//! a lexical analyzer must get right: multi-line `/* */` block comments,
//! raw string literals (`r#"..."#`), and strings spanning lines. This module
//! replaces it with a small real scanner shared by the lint and by every
//! `cargo xtask analyze` pass (DESIGN.md §8):
//!
//! * [`scan`] tokenizes source text into [`Token`]s — identifiers, numeric
//!   literals (with float classification), string/raw-string/char literals,
//!   lifetimes, punctuation (compound operators like `==`/`!=` kept as one
//!   token), and comments (retained, so suppression comments stay visible
//!   to the analysis driver);
//! * [`CodeModel`] layers structure over the token stream: brace-nesting
//!   depth per token, `#[cfg(test)]` item regions, and `fn` item boundaries.
//!
//! The scanner is a *lexer*, not a parser: it is deliberately permissive
//! (arbitrary byte soup must scan without panicking — there is a property
//! test asserting exactly that) and every analysis built on it is a
//! heuristic over token patterns, not a type-aware proof. That trade-off is
//! the point: the passes run in milliseconds on every push and catch the
//! bug classes that matter *before* any rank executes (the runtime
//! counterpart is `tt-comm::verify::VerifyComm`).

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `rank`, `allreduce_sum`, ...).
    Ident,
    /// Numeric literal; `float` is true for literals with a fractional
    /// part, a decimal exponent, or an `f32`/`f64` suffix.
    Num {
        /// Whether the literal lexes as floating-point.
        float: bool,
    },
    /// String literal (`"..."`, `b"..."`, `c"..."`), escapes handled.
    Str,
    /// Raw string literal (`r"..."`, `r#"..."#`, `br#"..."#`), no escapes.
    RawStr,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation; compound operators (`==`, `!=`, `->`, `::`, ...) are a
    /// single token.
    Punct,
    /// Comment (`// ...` or `/* ... */`, nesting handled); retained so the
    /// analysis driver can read suppression annotations.
    Comment {
        /// True for `/* */` block comments (which may span lines).
        block: bool,
    },
}

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Source text of the token (for comments: the full comment body).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Total: every input produces a token vector (unterminated
/// literals and comments extend to end-of-input), and the scanner always
/// advances, so it terminates on arbitrary input without panicking.
pub fn scan(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    // Counts newlines in chars[from..to] (for multi-line tokens).
    let count_lines = |from: usize, to: usize| -> usize {
        chars[from..to.min(n)]
            .iter()
            .filter(|&&c| c == '\n')
            .count()
    };
    let text_of = |from: usize, to: usize| -> String { chars[from..to.min(n)].iter().collect() };

    while i < n {
        let c = chars[i];
        let start = i;
        let start_line = line;

        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Comment { block: false },
                text: text_of(start, i),
                line: start_line,
            });
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += count_lines(start, i);
            out.push(Token {
                kind: TokenKind::Comment { block: true },
                text: text_of(start, i),
                line: start_line,
            });
            continue;
        }

        // Raw / byte / C string literals: r"", r#""#, b"", br#""#, c"", cr#""#.
        if matches!(c, 'r' | 'b' | 'c') {
            if let Some((end, raw)) = try_scan_prefixed_string(&chars, i) {
                line += count_lines(start, end);
                out.push(Token {
                    kind: if raw {
                        TokenKind::RawStr
                    } else {
                        TokenKind::Str
                    },
                    text: text_of(start, end),
                    line: start_line,
                });
                i = end;
                continue;
            }
            // Byte char literal b'x'.
            if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                let end = scan_char_body(&chars, i + 2);
                line += count_lines(start, end);
                out.push(Token {
                    kind: TokenKind::Char,
                    text: text_of(start, end),
                    line: start_line,
                });
                i = end;
                continue;
            }
        }

        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text: text_of(i, j),
                line: start_line,
            });
            i = j;
            continue;
        }

        // Ordinary string literal.
        if c == '"' {
            let end = scan_string_body(&chars, i + 1);
            line += count_lines(start, end);
            out.push(Token {
                kind: TokenKind::Str,
                text: text_of(start, end),
                line: start_line,
            });
            i = end;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            match chars.get(i + 1) {
                Some(&d) if is_ident_start(d) && chars.get(i + 2) != Some(&'\'') => {
                    // Lifetime: 'a, 'static (no closing quote after one char).
                    let mut j = i + 1;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    out.push(Token {
                        kind: TokenKind::Lifetime,
                        text: text_of(i, j),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                Some(_) => {
                    let end = scan_char_body(&chars, i + 1);
                    line += count_lines(start, end);
                    out.push(Token {
                        kind: TokenKind::Char,
                        text: text_of(start, end),
                        line: start_line,
                    });
                    i = end;
                    continue;
                }
                None => {
                    out.push(Token {
                        kind: TokenKind::Punct,
                        text: "'".to_string(),
                        line: start_line,
                    });
                    i += 1;
                    continue;
                }
            }
        }

        // Numeric literals.
        if c.is_ascii_digit() {
            let (end, float) = scan_number(&chars, i);
            out.push(Token {
                kind: TokenKind::Num { float },
                text: text_of(i, end),
                line: start_line,
            });
            i = end;
            continue;
        }

        // Punctuation; keep the compound operators the passes care about
        // as single tokens.
        const COMPOUND: &[&str] = &[
            "==", "!=", "<=", ">=", "->", "=>", "::", "..", "&&", "||", "+=", "-=", "*=", "/=",
            "<<", ">>",
        ];
        let two: String = chars[i..n.min(i + 2)].iter().collect();
        if COMPOUND.contains(&two.as_str()) {
            out.push(Token {
                kind: TokenKind::Punct,
                text: two,
                line: start_line,
            });
            i += 2;
            continue;
        }
        out.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line: start_line,
        });
        i += 1;
    }
    out
}

/// Scans a possibly-prefixed raw/byte/C string starting at `i` (which points
/// at the first prefix char). Returns `(end, raw)` — the index past the
/// closing quote and whether the literal is raw (escape-free) — or `None`
/// if the chars at `i` do not start such a literal.
fn try_scan_prefixed_string(chars: &[char], i: usize) -> Option<(usize, bool)> {
    let n = chars.len();
    let mut j = i;
    let mut saw_r = false;
    // Up to two prefix letters from {b, c, r}; `r` may be alone.
    for _ in 0..2 {
        match chars.get(j) {
            Some('r') => {
                saw_r = true;
                j += 1;
            }
            Some('b') | Some('c') if !saw_r => {
                j += 1;
            }
            _ => break,
        }
    }
    if j == i {
        return None;
    }
    // Optional hashes (raw strings only).
    let mut hashes = 0usize;
    if saw_r {
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    if saw_r {
        // Raw: scan to `"` followed by `hashes` hashes, no escapes.
        while j < n {
            if chars[j] == '"' {
                let mut h = 0usize;
                while h < hashes && chars.get(j + 1 + h) == Some(&'#') {
                    h += 1;
                }
                if h == hashes {
                    return Some((j + 1 + hashes, true));
                }
            }
            j += 1;
        }
        Some((n, true))
    } else {
        // b"..." / c"...": ordinary escape rules.
        Some((scan_string_body(chars, j), false))
    }
}

/// Scans an escaped string body starting just after the opening quote;
/// returns the index past the closing quote (or end of input).
fn scan_string_body(chars: &[char], mut j: usize) -> usize {
    let n = chars.len();
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Scans a char-literal body starting just after the opening quote; returns
/// the index past the closing quote. Bails at end-of-line for unterminated
/// literals so a stray `'` cannot swallow the rest of the file.
fn scan_char_body(chars: &[char], mut j: usize) -> usize {
    let n = chars.len();
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            '\n' => return j,
            _ => j += 1,
        }
    }
    n
}

/// Scans a numeric literal starting at digit `i`; returns (end, is_float).
fn scan_number(chars: &[char], i: usize) -> (usize, bool) {
    let n = chars.len();
    let mut j = i;
    let mut float = false;
    let radix_prefix = chars[i] == '0'
        && matches!(
            chars.get(i + 1),
            Some('x') | Some('o') | Some('b') | Some('X')
        );
    if radix_prefix {
        j += 2;
        while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (j, false);
    }
    while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    // Fractional part: a `.` not starting a range (`..`) or a method call
    // (`1.max(2)`).
    if chars.get(j) == Some(&'.') {
        let after = chars.get(j + 1).copied();
        let is_range = after == Some('.');
        let is_method = after.is_some_and(is_ident_start);
        if !is_range && !is_method {
            float = true;
            j += 1;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Exponent.
    if matches!(chars.get(j), Some('e') | Some('E')) {
        let mut k = j + 1;
        if matches!(chars.get(k), Some('+') | Some('-')) {
            k += 1;
        }
        if chars.get(k).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            j = k;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix (f64, u32, usize, ...).
    if chars.get(j).copied().is_some_and(is_ident_start) {
        let suffix_start = j;
        while j < n && is_ident_continue(chars[j]) {
            j += 1;
        }
        if chars.get(suffix_start) == Some(&'f') {
            float = true;
        }
    }
    (j, float)
}

/// One `fn` item found in the token stream.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name (`<anon>` for malformed input).
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token index range `[open_brace, close_brace]` of the body, if the
    /// item has one (trait method declarations do not).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

impl FnInfo {
    /// True if token index `idx` lies strictly inside this fn's body.
    pub fn contains(&self, idx: usize) -> bool {
        match self.body {
            Some((a, b)) => idx > a && idx < b,
            None => false,
        }
    }
}

/// Structured view over a scanned file: comment-free code tokens plus
/// brace-depth, `#[cfg(test)]`-region, and `fn`-boundary classification.
#[derive(Debug)]
pub struct CodeModel {
    /// Code tokens (comments stripped).
    pub tokens: Vec<Token>,
    /// Comment tokens, in source order (suppression annotations live here).
    pub comments: Vec<Token>,
    /// Brace-nesting depth of each code token (the `{`/`}` tokens
    /// themselves carry the depth of the region they delimit).
    pub depth: Vec<usize>,
    /// Whether each code token lies inside a `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
    /// All `fn` items, in source order (nested fns included).
    pub fns: Vec<FnInfo>,
}

impl CodeModel {
    /// Scans `src` and builds the structured view.
    pub fn build(src: &str) -> CodeModel {
        let all = scan(src);
        let mut tokens = Vec::with_capacity(all.len());
        let mut comments = Vec::new();
        for t in all {
            if matches!(t.kind, TokenKind::Comment { .. }) {
                comments.push(t);
            } else {
                tokens.push(t);
            }
        }

        // Brace depth.
        let mut depth = Vec::with_capacity(tokens.len());
        let mut d = 0usize;
        for t in &tokens {
            if t.is_punct("{") {
                depth.push(d);
                d += 1;
            } else if t.is_punct("}") {
                d = d.saturating_sub(1);
                depth.push(d);
            } else {
                depth.push(d);
            }
        }

        let in_test = test_regions(&tokens);
        let fns = find_fns(&tokens);
        CodeModel {
            tokens,
            comments,
            depth,
            in_test,
            fns,
        }
    }

    /// The innermost `fn` whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.contains(idx))
            .min_by_key(|f| match f.body {
                Some((a, b)) => b - a,
                None => usize::MAX,
            })
    }

    /// Marks tokens lexically inside a `for`/`while`/`loop` body (any
    /// nesting). The mask is the "is this executed per-iteration" predicate
    /// the `alloc_hot_path` pass and the call-site extractor use; like every
    /// view on this model it is heuristic — a closure body inside a loop is
    /// marked (correct: it runs per iteration if called there), and a nested
    /// `fn` item inside a loop is marked too (accepted imprecision).
    pub fn loop_mask(&self) -> Vec<bool> {
        let toks = &self.tokens;
        let n = toks.len();
        let mut mask = vec![false; n];
        let mut i = 0usize;
        while i < n {
            let t = &toks[i];
            if !(t.is_ident("for") || t.is_ident("while") || t.is_ident("loop")) {
                i += 1;
                continue;
            }
            // Find the body `{` at paren/bracket depth 0 (the `for pat in
            // expr` header and `while` condition cannot contain a
            // brace-block at depth 0 outside parens in well-formed code;
            // on malformed input we simply stop at `;`).
            let mut j = i + 1;
            let mut pd = 0i64;
            let mut open = None;
            while j < n {
                let u = &toks[j];
                if u.is_punct("(") || u.is_punct("[") {
                    pd += 1;
                } else if u.is_punct(")") || u.is_punct("]") {
                    pd -= 1;
                } else if u.is_punct("{") && pd <= 0 {
                    open = Some(j);
                    break;
                } else if u.is_punct(";") && pd <= 0 {
                    break;
                }
                j += 1;
            }
            let Some(open) = open else {
                i += 1;
                continue;
            };
            let end = self.matching_brace(open);
            for flag in mask.iter_mut().take(end + 1).skip(open) {
                *flag = true;
            }
            // Continue *inside* the body so nested loops also mark (the mask
            // is idempotent, but inner `for` headers must still be seen).
            i = open + 1;
        }
        mask
    }

    /// Index of the matching `)` for the `(` at token index `open`, or the
    /// last token if unbalanced (same contract as [`Self::matching_brace`]).
    pub fn matching_paren(&self, open: usize) -> usize {
        let mut d = 0i64;
        for (i, t) in self.tokens.iter().enumerate().skip(open) {
            if t.is_punct("(") {
                d += 1;
            } else if t.is_punct(")") {
                d -= 1;
                if d == 0 {
                    return i;
                }
            }
        }
        self.tokens.len().saturating_sub(1)
    }

    /// Token ranges `[start, end)` of the top-level comma-separated
    /// arguments of the call whose `(` sits at token index `open`. Used by
    /// the skeleton extractor to capture peer-rank and tag expressions
    /// (`comm.send(rank - mask, &buf)` → the `rank - mask` slice). Total on
    /// malformed input: unbalanced parens clamp at the last token.
    pub fn call_args(&self, open: usize) -> Vec<(usize, usize)> {
        let close = self.matching_paren(open);
        let mut out = Vec::new();
        if close <= open + 1 {
            return out;
        }
        let mut depth = 0i64;
        let mut start = open + 1;
        for i in open + 1..close {
            let t = &self.tokens[i];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if t.is_punct(",") && depth <= 0 {
                out.push((start, i));
                start = i + 1;
            }
        }
        if start < close {
            out.push((start, close));
        }
        out
    }

    /// Index of the matching `}` for the `{` at token index `open`, or the
    /// last token if unbalanced.
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut d = 0usize;
        for (i, t) in self.tokens.iter().enumerate().skip(open) {
            if t.is_punct("{") {
                d += 1;
            } else if t.is_punct("}") {
                d -= 1;
                if d == 0 {
                    return i;
                }
            }
        }
        self.tokens.len().saturating_sub(1)
    }
}

/// Marks tokens inside `#[cfg(test)]`-gated items (the `#[cfg(test)] mod
/// tests { ... }` idiom, single gated items, and `;`-terminated gated
/// declarations).
fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let n = tokens.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        // Match `#[...]` and inspect its content for `cfg ( test`.
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Find the closing `]` (attributes nest brackets).
            let mut j = i + 1;
            let mut bd = 0i64;
            let mut is_cfg_test = false;
            let mut prev_idents: Vec<&str> = Vec::new();
            while j < n {
                let t = &tokens[j];
                if t.is_punct("[") {
                    bd += 1;
                } else if t.is_punct("]") {
                    bd -= 1;
                    if bd == 0 {
                        break;
                    }
                } else if t.kind == TokenKind::Ident {
                    prev_idents.push(&t.text);
                }
                j += 1;
            }
            if prev_idents.first() == Some(&"cfg") && prev_idents.contains(&"test") {
                is_cfg_test = true;
            }
            if is_cfg_test {
                // The attribute applies to the next item: skip any further
                // attributes, then the region runs to the item's closing
                // brace (or its `;` for brace-less items).
                let mut k = j + 1;
                while k < n
                    && tokens[k].is_punct("#")
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct("["))
                {
                    let mut bd2 = 0i64;
                    while k < n {
                        if tokens[k].is_punct("[") {
                            bd2 += 1;
                        } else if tokens[k].is_punct("]") {
                            bd2 -= 1;
                            if bd2 == 0 {
                                k += 1;
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                // Scan for the item's first `{` at paren depth 0, or a `;`.
                let mut pd = 0i64;
                let mut m = k;
                let mut end = None;
                while m < n {
                    let t = &tokens[m];
                    if t.is_punct("(") {
                        pd += 1;
                    } else if t.is_punct(")") {
                        pd -= 1;
                    } else if t.is_punct(";") && pd <= 0 {
                        end = Some(m);
                        break;
                    } else if t.is_punct("{") && pd <= 0 {
                        // Match braces forward.
                        let mut bd3 = 0i64;
                        let mut q = m;
                        while q < n {
                            if tokens[q].is_punct("{") {
                                bd3 += 1;
                            } else if tokens[q].is_punct("}") {
                                bd3 -= 1;
                                if bd3 == 0 {
                                    break;
                                }
                            }
                            q += 1;
                        }
                        end = Some(q.min(n - 1));
                        break;
                    }
                    m += 1;
                }
                let end = end.unwrap_or(n - 1);
                for flag in mask.iter_mut().take(end + 1).skip(i) {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Finds every `fn` item and its body's brace span.
fn find_fns(tokens: &[Token]) -> Vec<FnInfo> {
    let n = tokens.len();
    let mut fns = Vec::new();
    for i in 0..n {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        // `fn` in `Fn()` trait bounds is `Fn` (capitalized) — distinct
        // ident. A `fn` pointer type (`fn(usize) -> T`) has no name ident.
        let name = match tokens.get(i + 1) {
            Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
            _ => continue,
        };
        // Find the body `{` at paren/bracket depth 0, stopping at `;`.
        let mut pd = 0i64;
        let mut body = None;
        let mut j = i + 2;
        while j < n {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") {
                pd += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                pd -= 1;
            } else if t.is_punct(";") && pd <= 0 {
                break;
            } else if t.is_punct("{") && pd <= 0 {
                // Match braces.
                let mut bd = 0i64;
                let mut q = j;
                while q < n {
                    if tokens[q].is_punct("{") {
                        bd += 1;
                    } else if tokens[q].is_punct("}") {
                        bd -= 1;
                        if bd == 0 {
                            break;
                        }
                    }
                    q += 1;
                }
                body = Some((j, q.min(n - 1)));
                break;
            }
            j += 1;
        }
        fns.push(FnInfo {
            name,
            fn_idx: i,
            body,
            line: tokens[i].line,
        });
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        scan(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_and_comments_are_classified() {
        let toks = kinds("let s = \"x.unwrap()\"; // .unwrap()\n");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(
            toks.iter()
                .any(|(k, t)| matches!(k, TokenKind::Comment { block: false })
                    && t.contains("unwrap"))
        );
        // No Ident token named `unwrap` leaks out of the literal/comment.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn multi_line_block_comments_scan_as_one_token() {
        let src = "fn a() {}\n/* spans\n   .unwrap()\n   lines */\nfn b() {}\n";
        let toks = scan(src);
        let comment = toks
            .iter()
            .find(|t| matches!(t.kind, TokenKind::Comment { block: true }))
            .expect("block comment token");
        assert_eq!(comment.line, 2);
        assert!(comment.text.contains(".unwrap()"));
        // Line numbers resume correctly after the multi-line comment.
        let b = toks.iter().find(|t| t.is_ident("b")).expect("fn b ident");
        assert_eq!(b.line, 5);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = kinds("/* outer /* inner */ still comment */ fn x() {}");
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Ident));
        let comment = &toks[0];
        assert!(comment.1.contains("inner"));
        assert!(comment.1.ends_with("*/"));
    }

    #[test]
    fn raw_strings_with_hashes_scan_as_one_token() {
        let src = "let s = r#\"multi\nline \".unwrap()\" body\"#; fn after() {}";
        let toks = scan(src);
        let raw = toks
            .iter()
            .find(|t| t.kind == TokenKind::RawStr)
            .expect("raw string token");
        assert!(raw.text.contains(".unwrap()"));
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn byte_and_c_strings_are_strings() {
        let toks = kinds("b\"bytes\" c\"cstr\" br#\"raw bytes\"#");
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::Str);
        assert_eq!(toks[2].0, TokenKind::RawStr);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str; 'x'; '\\n'; b'z'");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            3
        );
    }

    #[test]
    fn numbers_classify_floatness() {
        let toks = kinds("1 1.0 1e3 0.5e-2 2f64 3usize 0x1F 0..5 1.max(2)");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::Num { float: true }))
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["1.0", "1e3", "0.5e-2", "2f64"]);
        // Range and method-call dots are not absorbed into the number.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && t == ".."));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        let toks = kinds("a == b != c -> d => e :: f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "->", "=>", "::"]);
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let m = CodeModel::build(src);
        let unwraps: Vec<bool> = m
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| m.in_test[i])
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        // fn c after the region is back outside.
        let c_idx = m.tokens.iter().position(|t| t.is_ident("c")).expect("fn c");
        assert!(!m.in_test[c_idx]);
    }

    #[test]
    fn cfg_test_on_single_item_ends_region() {
        let src = "#[cfg(test)]\nfn helper() {\n    z.unwrap();\n}\nfn real() { w.unwrap(); }\n";
        let m = CodeModel::build(src);
        let flags: Vec<bool> = m
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| m.in_test[i])
            .collect();
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn cfg_test_with_stacked_attributes() {
        let src =
            "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn x() { a.unwrap(); } }\nfn y() {}\n";
        let m = CodeModel::build(src);
        let i = m
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap");
        assert!(m.in_test[i]);
        let y = m.tokens.iter().position(|t| t.is_ident("y")).expect("y");
        assert!(!m.in_test[y]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        // Only cfg attributes that mention `test` gate a region.
        let src = "#[cfg(feature = \"paranoid\")]\nfn p() { q.unwrap(); }\n";
        let m = CodeModel::build(src);
        let i = m
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap");
        assert!(!m.in_test[i]);
    }

    #[test]
    fn fn_boundaries_and_enclosing_fn() {
        let src = "fn outer(a: usize) -> usize {\n    fn inner() {}\n    a\n}\nfn other() {}\n";
        let m = CodeModel::build(src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "other"]);
        let a_use = m
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("a"))
            .map(|(i, _)| i)
            .next_back()
            .expect("a use");
        assert_eq!(
            m.enclosing_fn(a_use).map(|f| f.name.as_str()),
            Some("outer")
        );
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T { fn decl(&self) -> usize; fn with_default(&self) { () } }";
        let m = CodeModel::build(src);
        assert_eq!(m.fns.len(), 2);
        assert!(m.fns[0].body.is_none());
        assert!(m.fns[1].body.is_some());
    }

    #[test]
    fn depth_tracks_brace_nesting() {
        let src = "fn f() { if x { y(); } }";
        let m = CodeModel::build(src);
        let y = m.tokens.iter().position(|t| t.is_ident("y")).expect("y");
        assert_eq!(m.depth[y], 2);
    }

    #[test]
    fn loop_mask_marks_loop_bodies_only() {
        let src = "fn f() {\n    let a = 1;\n    for i in 0..3 { body(i); }\n    while x { w(); }\n    loop { l(); break; }\n    after();\n}\n";
        let m = CodeModel::build(src);
        let mask = m.loop_mask();
        for (name, expect) in [
            ("a", false),
            ("body", true),
            ("w", true),
            ("l", true),
            ("after", false),
        ] {
            let i = m
                .tokens
                .iter()
                .position(|t| t.is_ident(name))
                .unwrap_or_else(|| panic!("ident {name}"));
            assert_eq!(mask[i], expect, "loop mask for `{name}`");
        }
    }

    #[test]
    fn loop_mask_handles_nested_loops() {
        let src = "fn f() { for i in 0..2 { for j in v.iter() { inner(); } } tail(); }";
        let m = CodeModel::build(src);
        let mask = m.loop_mask();
        let inner = m
            .tokens
            .iter()
            .position(|t| t.is_ident("inner"))
            .expect("inner");
        let tail = m
            .tokens
            .iter()
            .position(|t| t.is_ident("tail"))
            .expect("tail");
        assert!(mask[inner]);
        assert!(!mask[tail]);
    }

    #[test]
    fn call_args_split_at_top_level_commas_only() {
        let src = "fn f() { comm.send(rank - mask, g(a, b), [x, y]); }";
        let m = CodeModel::build(src);
        let send = m
            .tokens
            .iter()
            .position(|t| t.is_ident("send"))
            .expect("send");
        let args = m.call_args(send + 1);
        assert_eq!(args.len(), 3);
        let texts: Vec<String> = args
            .iter()
            .map(|&(a, b)| {
                m.tokens[a..b]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        assert_eq!(texts[0], "rank - mask");
        assert_eq!(texts[1], "g ( a , b )");
        assert_eq!(texts[2], "[ x , y ]");
    }

    #[test]
    fn call_args_on_empty_and_unbalanced_input() {
        let m = CodeModel::build("fn f() { g(); }");
        let g = m.tokens.iter().position(|t| t.is_ident("g")).expect("g");
        assert!(m.call_args(g + 1).is_empty());
        // Unbalanced: clamps at end of input, never panics (the final
        // unterminated argument is dropped — degradation, not an error).
        let m2 = CodeModel::build("f(a, b");
        let f = m2.tokens.iter().position(|t| t.is_ident("f")).expect("f");
        assert_eq!(m2.call_args(f + 1).len(), 1);
    }

    #[test]
    fn unterminated_constructs_do_not_loop_or_panic() {
        for src in [
            "/* never closed",
            "\"never closed",
            "r#\"never closed",
            "'",
            "b\"",
            "r###\"abc\"##",
            "1.",
            "0x",
        ] {
            let _ = scan(src);
            let _ = CodeModel::build(src);
        }
    }
}
