//! Workspace automation library (the cargo `xtask` pattern: a plain crate
//! invoked through the `.cargo/config.toml` alias, so the whole toolchain
//! needs nothing but `cargo` itself).
//!
//! Tasks (dispatched by the thin `main.rs`):
//!
//! * [`lint`] — the always-on gate: rustfmt check, clippy deny-list,
//!   scanner-based unwrap/expect source lint, `forbid(unsafe_code)` audit;
//! * [`analyze`] — the SPMD collective-safety and numeric-discipline
//!   analyzer: the [`scanner`] token model plus the [`passes`] registry,
//!   with in-source suppressions (DESIGN.md §8);
//! * [`bench_check`] — the kernel performance gate against the recorded
//!   `results/BENCH_kernels.json` baseline.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod bench_check;
pub mod cache;
pub mod callgraph;
pub mod lint;
pub mod passes;
pub mod sarif;
pub mod scanner;
pub mod skeleton;

use std::path::{Path, PathBuf};

/// Directories holding non-test library sources, relative to the repo root.
/// `tests/`, `benches/`, and `examples/` trees are exempt from the source
/// lints; `#[cfg(test)]` regions inside these sources are masked by the
/// scanner's [`scanner::CodeModel`].
pub const LIBRARY_SRC_ROOTS: &[&str] = &["crates", "src", "vendor", "xtask/src"];

/// The repo root, derived from the xtask manifest dir (`cargo xtask` always
/// runs with the manifest dir set to `<repo>/xtask`).
pub fn repo_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_string());
    let path = PathBuf::from(&manifest);
    path.parent().map(Path::to_path_buf).unwrap_or(path)
}

/// Every crate root that must carry `#![forbid(unsafe_code)]`.
pub fn crate_roots(repo: &Path) -> Vec<PathBuf> {
    let mut roots = vec![repo.join("src/lib.rs"), repo.join("xtask/src/lib.rs")];
    for dir in ["crates", "vendor"] {
        let Ok(entries) = std::fs::read_dir(repo.join(dir)) else {
            continue;
        };
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.sort();
    roots
}

/// Recursively collects `.rs` files, skipping test-only trees
/// (`tests/`, `benches/`, `examples/`) and build output (`target/`).
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), std::io::Error> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "tests" | "benches" | "examples" | "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
