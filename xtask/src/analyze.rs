//! `cargo xtask analyze` — the SPMD collective-safety and numeric-discipline
//! static analyzer (DESIGN.md §8 and §10).
//!
//! The analysis runs in two stages:
//!
//! 1. **Per-file** (parallel, cached): each source file is read, scanned
//!    into a [`CodeModel`], run through every per-file [`Pass`], its
//!    suppressions parsed, and its call-graph [`FileSummary`] extracted.
//!    The result is a [`FileRecord`] that depends only on the file's bytes,
//!    so it is cached under `target/analyze-cache/` keyed by content hash
//!    ([`crate::cache`]) and the stage fans out over scoped worker threads
//!    with a static chunk partition — no locks, deterministic merge order,
//!    the same discipline `tt_linalg::par` imposes on the kernels.
//! 2. **Workspace** (serial, cheap): the summaries merge into a
//!    [`CallGraph`], facts propagate to a fixpoint, and the interprocedural
//!    [`GraphPass`]es (`collective_order`, `determinism`, `alloc_hot_path`)
//!    run over the whole graph. Their findings join the per-file ones
//!    before suppression reconciliation, so one suppression syntax covers
//!    both kinds.
//!
//! Suppressions:
//!
//! ```text
//! // analyze::allow(<pass>): <reason>
//! ```
//!
//! A suppression written as a trailing comment applies to its own line; one
//! on a line of its own applies to the next code line (so several can be
//! stacked above one statement). The reason is mandatory — an accepted
//! finding must be documented at the site — and the pass name must exist.
//! Suppressions that match no diagnostic are themselves errors (on by
//! default; nightly CI passes `--check-suppressions` explicitly, local
//! triage can pass `--no-check-suppressions` while iterating), so stale
//! annotations cannot accumulate. `--fix-suppressions` prints a removal
//! plan for the stale annotations; add `--apply` to edit them out of the
//! source (whole line for standalone comments, the comment portion for
//! trailing ones).
//!
//! `--changed-only[=REF]` scopes the run to files changed vs a git ref
//! (default `HEAD`, tracked diff + untracked) for fast pre-commit checks;
//! because the call graph then only sees part of the workspace, it turns
//! unused-suppression checking off unless explicitly requested.
//!
//! Exit code is non-zero on any unsuppressed diagnostic, malformed
//! suppression, or (when checking) unused suppression. `--format json`
//! emits the full report as a single JSON object on stdout; `--format
//! sarif` emits SARIF 2.1.0 for GitHub code scanning ([`crate::sarif`]).
//! `--stats` prints scan/cache/graph counters to stderr — the CI lint job
//! logs it so analyzer precision regressions (unresolved-call growth,
//! cache collapse) are visible in history.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::cache::{self, FileRecord};
use crate::callgraph::{hot_reachability, propagate, CallGraph, FileSummary};
use crate::passes::{all_graph_passes, all_pass_names, all_passes, Diagnostic, GraphContext};
use crate::scanner::CodeModel;
use crate::{collect_rs_files, LIBRARY_SRC_ROOTS};

/// One parsed `// analyze::allow(<pass>): <reason>` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Pass the annotation silences.
    pub pass: String,
    /// Mandatory justification text.
    pub reason: String,
    /// Line the suppression applies to (its own line for trailing
    /// comments, the next code line for standalone ones).
    pub target_line: usize,
    /// Line the comment itself sits on (for reporting).
    pub comment_line: usize,
}

/// One unused suppression, located precisely enough to auto-remove it
/// (`--fix-suppressions`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedSite {
    /// Repo-relative path of the file carrying the annotation.
    pub file: String,
    /// 1-based line of the comment itself.
    pub comment_line: usize,
    /// Pass the annotation names.
    pub pass: String,
}

/// Full result of one analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by any suppression.
    pub diagnostics: Vec<Diagnostic>,
    /// Count of findings silenced by a suppression.
    pub suppressed: usize,
    /// Malformed suppression annotations (unknown pass, missing reason).
    pub errors: Vec<String>,
    /// Suppressions that silenced nothing, as `file:line: pass` strings.
    pub unused: Vec<String>,
    /// The same unused suppressions, structured (drives `--fix-suppressions`).
    pub unused_sites: Vec<UnusedSite>,
    /// Number of files analyzed.
    pub files: usize,
}

impl Report {
    /// True when the gate should pass.
    pub fn is_clean(&self, check_suppressions: bool) -> bool {
        self.diagnostics.is_empty()
            && self.errors.is_empty()
            && (!check_suppressions || self.unused.is_empty())
    }
}

/// Tuning knobs for one analysis run (the CLI maps flags onto this; the
/// fixture tests use [`AnalysisOptions::serial_uncached`] so goldens never
/// depend on the cache or thread count).
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Worker threads for the per-file stage (`1` = fully serial).
    pub jobs: usize,
    /// Cache directory; `None` disables the cache.
    pub cache_dir: Option<PathBuf>,
}

impl AnalysisOptions {
    /// Serial, uncached: the reference configuration every other one must
    /// match bit-for-bit (property-tested in `tests/scanner_props.rs`).
    pub fn serial_uncached() -> AnalysisOptions {
        AnalysisOptions {
            jobs: 1,
            cache_dir: None,
        }
    }
}

/// Counters from one analysis run, surfaced by `--stats` (and asserted on
/// by the cache tests: a warm run must show hits).
#[derive(Debug, Default, Clone)]
pub struct AnalysisStats {
    /// Files analyzed.
    pub files: usize,
    /// Per-file records served from the content-hash cache.
    pub cache_hits: usize,
    /// Per-file records computed fresh (includes cache-disabled runs).
    pub cache_misses: usize,
    /// Call-graph nodes (functions).
    pub graph_nodes: usize,
    /// Call-graph edges (call sites).
    pub graph_edges: usize,
    /// Call sites linked to exactly one definition.
    pub resolved_calls: usize,
    /// Call sites linked to several candidates (over-approximated).
    pub ambiguous_calls: usize,
    /// Call sites with no workspace definition.
    pub external_calls: usize,
    /// Public `_dist` entry points with bodies: each has an extracted
    /// communication skeleton and is model-checked by `deadlock_check`.
    pub dist_covered: usize,
    /// Bodyless public `_dist` declarations (trait methods): named but not
    /// checkable, reported so coverage gaps are visible rather than silent.
    pub dist_uncovered: usize,
}

impl AnalysisStats {
    /// The `--stats` line (also what CI logs).
    pub fn render(&self) -> String {
        let total = self.cache_hits + self.cache_misses;
        let rate = if total == 0 {
            0.0
        } else {
            100.0 * self.cache_hits as f64 / total as f64
        };
        let dist_total = self.dist_covered + self.dist_uncovered;
        format!(
            "{} files scanned (cache: {} hits / {} misses, {rate:.1}% hit rate), \
             call graph: {} nodes / {} edges ({} resolved, {} ambiguous, {} external calls), \
             skeletons: {}/{dist_total} public _dist entry points covered ({} uncovered)",
            self.files,
            self.cache_hits,
            self.cache_misses,
            self.graph_nodes,
            self.graph_edges,
            self.resolved_calls,
            self.ambiguous_calls,
            self.external_calls,
            self.dist_covered,
            self.dist_uncovered,
        )
    }
}

/// CLI entry point for `cargo xtask analyze`.
pub fn analyze(repo: &Path, args: &[String]) -> ExitCode {
    #[derive(PartialEq)]
    enum Format {
        Text,
        Json,
        Sarif,
    }
    let mut format = Format::Text;
    let mut check_suppressions = true;
    let mut check_explicit = false;
    let mut show_stats = false;
    let mut fix_suppressions = false;
    let mut fix_apply = false;
    let mut changed_only: Option<String> = None;
    let mut opts = AnalysisOptions {
        jobs: default_jobs(),
        cache_dir: Some(cache::default_cache_dir(repo)),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!(
                        "analyze: --format expects `text`, `json`, or `sarif`, got {:?}",
                        other.unwrap_or("<nothing>")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--format=json" => format = Format::Json,
            "--format=sarif" => format = Format::Sarif,
            "--format=text" => format = Format::Text,
            "--check-suppressions" => {
                check_suppressions = true;
                check_explicit = true;
            }
            "--no-check-suppressions" => {
                check_suppressions = false;
                check_explicit = true;
            }
            "--stats" => show_stats = true,
            "--fix-suppressions" => fix_suppressions = true,
            "--apply" => fix_apply = true,
            "--changed-only" => changed_only = Some("HEAD".to_string()),
            flag if flag.starts_with("--changed-only=") => {
                let gitref = &flag["--changed-only=".len()..];
                if gitref.is_empty() {
                    eprintln!("analyze: --changed-only= expects a git ref");
                    return ExitCode::FAILURE;
                }
                changed_only = Some(gitref.to_string());
            }
            "--no-cache" => opts.cache_dir = None,
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.jobs = n,
                _ => {
                    eprintln!("analyze: --jobs expects a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--list-passes" => {
                for p in all_passes() {
                    eprintln!("{:18} {}", p.name(), p.description());
                    if !p.allowlist().is_empty() {
                        eprintln!("{:18}   (not run on: {})", "", p.allowlist().join(", "));
                    }
                }
                for p in all_graph_passes() {
                    eprintln!("{:18} [interprocedural] {}", p.name(), p.description());
                    if !p.allowlist().is_empty() {
                        eprintln!("{:18}   (not run on: {})", "", p.allowlist().join(", "));
                    }
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!(
                    "analyze: unknown flag `{other}`\n\
                     usage: cargo xtask analyze [--format text|json|sarif] \
                     [--no-check-suppressions] [--check-suppressions] [--stats] \
                     [--jobs N] [--no-cache] [--changed-only[=REF]] \
                     [--fix-suppressions [--apply]] [--list-passes]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if fix_apply && !fix_suppressions {
        eprintln!("analyze: --apply only makes sense with --fix-suppressions");
        return ExitCode::FAILURE;
    }
    // A partial file set cannot judge suppressions of interprocedural
    // findings (their evidence may live in out-of-scope files), so
    // `--changed-only` defaults unused-suppression checking off unless the
    // caller asked for it explicitly.
    if changed_only.is_some() && !check_explicit {
        check_suppressions = false;
    }

    let mut files = Vec::new();
    for root in LIBRARY_SRC_ROOTS {
        if let Err(e) = collect_rs_files(&repo.join(root), &mut files) {
            eprintln!("analyze: could not walk {root}: {e}");
            return ExitCode::FAILURE;
        }
    }
    files.sort();
    if let Some(gitref) = &changed_only {
        let changed = match changed_files(repo, gitref) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("analyze: --changed-only: {e}");
                return ExitCode::FAILURE;
            }
        };
        let before = files.len();
        files.retain(|f| {
            let rel = f
                .strip_prefix(repo)
                .unwrap_or(f)
                .to_string_lossy()
                .replace('\\', "/");
            changed.contains(&rel)
        });
        eprintln!(
            "analyze: --changed-only {gitref}: {} of {before} files in scope",
            files.len()
        );
    }

    let started = std::time::Instant::now();
    let (mut report, stats) = match analyze_files_with(repo, &files, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed_ms = started.elapsed().as_millis();

    if fix_suppressions {
        match apply_suppression_fixes(repo, &report.unused_sites, fix_apply) {
            Ok(fixed) => {
                if fix_apply {
                    // The annotations are gone from disk, so the gate judges
                    // the post-fix tree: drop the fixed entries.
                    report.unused.retain(|u| {
                        !fixed
                            .iter()
                            .any(|s| u.starts_with(&format!("{}:{}:", s.file, s.comment_line)))
                    });
                    report
                        .unused_sites
                        .retain(|s| !fixed.iter().any(|f| f == s));
                }
            }
            Err(e) => {
                eprintln!("analyze: --fix-suppressions: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match format {
        Format::Json => {
            // stdout on purpose (the machine-readable surface); the clippy
            // print_stdout deny is satisfied by writing the handle directly.
            let mut stdout = std::io::stdout();
            if writeln!(stdout, "{}", report_to_json(&report, check_suppressions)).is_err() {
                return ExitCode::FAILURE;
            }
        }
        Format::Sarif => {
            let mut stdout = std::io::stdout();
            let sarif = crate::sarif::report_to_sarif(&report, check_suppressions);
            if writeln!(stdout, "{sarif}").is_err() {
                return ExitCode::FAILURE;
            }
        }
        Format::Text => {
            for d in &report.diagnostics {
                eprintln!("analyze: {}:{}: [{}] {}", d.file, d.line, d.pass, d.message);
            }
            for e in &report.errors {
                eprintln!("analyze: {e}");
            }
            if check_suppressions {
                for u in &report.unused {
                    eprintln!("analyze: {u}: suppression matches no diagnostic — remove it");
                }
            }
            eprintln!(
                "analyze: {} files, {} passes, {} diagnostics ({} suppressed), {} suppression errors{}",
                report.files,
                all_pass_names().len(),
                report.diagnostics.len(),
                report.suppressed,
                report.errors.len(),
                if check_suppressions {
                    format!(", {} unused suppressions", report.unused.len())
                } else {
                    String::new()
                },
            );
        }
    }
    if show_stats {
        eprintln!(
            "analyze: stats: {}, elapsed {elapsed_ms} ms",
            stats.render()
        );
    }

    if report.is_clean(check_suppressions) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Default per-file-stage parallelism: the machine width, capped — past a
/// handful of workers the stage is I/O- and merge-bound.
fn default_jobs() -> usize {
    // Tooling-only parallelism knob (xtask is on the determinism pass
    // allowlist): the report is merge-order deterministic for any worker
    // count, property-tested in tests/scanner_props.rs.
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// Runs the full two-stage analysis over `files` (paths made repo-relative
/// against `repo` for diagnostics and allowlist matching). This is the
/// library surface the fixture and property tests drive directly.
pub fn analyze_files_with(
    repo: &Path,
    files: &[PathBuf],
    opts: &AnalysisOptions,
) -> Result<(Report, AnalysisStats), std::io::Error> {
    let mut stats = AnalysisStats::default();

    // ---- Stage 1: per-file records (parallel, cached) ----
    let records = collect_records(repo, files, opts, &mut stats)?;
    stats.files = records.len();

    // ---- Stage 2: workspace call graph + interprocedural passes ----
    let summaries: Vec<FileSummary> = records.iter().map(|r| r.summary.clone()).collect();
    let graph = CallGraph::build(summaries);
    let facts = propagate(&graph);
    let hot = hot_reachability(&graph);
    stats.graph_nodes = graph.nodes.len();
    stats.graph_edges = graph.edge_count();
    stats.resolved_calls = graph.resolved_calls;
    stats.ambiguous_calls = graph.ambiguous_calls;
    stats.external_calls = graph.external_calls;
    // Skeleton coverage: every public `_dist` fn with a body has an
    // extracted skeleton and is model-checked by `deadlock_check`; bodyless
    // trait declarations are counted as uncovered so the CI assertion on
    // the stats line cannot silently lose entry points.
    for ni in 0..graph.nodes.len() {
        let fs = graph.summary(ni);
        if fs.is_pub && crate::skeleton::is_dist_entry(&fs.name) {
            stats.dist_covered += 1;
        }
    }
    stats.dist_uncovered = graph.files.iter().map(|f| f.dist_decls.len()).sum();

    let cx = GraphContext {
        graph: &graph,
        facts: &facts,
        hot: &hot,
    };
    let mut graph_findings: Vec<Diagnostic> = Vec::new();
    for pass in all_graph_passes() {
        let mut found = Vec::new();
        pass.run(&cx, &mut found);
        // Graph passes run once globally; their allowlist is applied by
        // filtering findings on the file they point into.
        found.retain(|d| !pass.allowlist().iter().any(|p| d.file.starts_with(p)));
        graph_findings.append(&mut found);
    }
    // Every graph finding points into a scanned file (nodes come from the
    // records), so the reconciliation below sees all of them.
    let mut by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for d in graph_findings {
        by_file.entry(d.file.clone()).or_default().push(d);
    }

    // ---- Reconciliation: merge findings, apply suppressions ----
    let mut report = Report {
        files: records.len(),
        ..Report::default()
    };
    for rec in records {
        let rel = rec.summary.path.as_str();
        let mut findings = rec.findings;
        if let Some(extra) = by_file.remove(rel) {
            findings.extend(extra);
        }
        findings.sort_by(|a, b| (a.line, a.pass).cmp(&(b.line, b.pass)));
        report.errors.extend(rec.errors);

        let suppressions = rec.suppressions;
        let mut used = vec![false; suppressions.len()];
        for d in findings {
            let hit = suppressions
                .iter()
                .position(|s| s.pass == d.pass && s.target_line == d.line);
            match hit {
                Some(k) => {
                    used[k] = true;
                    report.suppressed += 1;
                }
                None => report.diagnostics.push(d),
            }
        }
        for (k, s) in suppressions.into_iter().enumerate() {
            if !used[k] {
                report.unused.push(format!(
                    "{rel}:{}: analyze::allow({})",
                    s.comment_line, s.pass
                ));
                report.unused_sites.push(UnusedSite {
                    file: rel.to_string(),
                    comment_line: s.comment_line,
                    pass: s.pass,
                });
            }
        }
    }
    Ok((report, stats))
}

/// Backwards-compatible serial entry point (the fixture goldens predate the
/// two-stage pipeline and must stay cache- and thread-independent).
pub fn analyze_files(repo: &Path, files: &[PathBuf]) -> Result<Report, std::io::Error> {
    analyze_files_with(repo, files, &AnalysisOptions::serial_uncached()).map(|(r, _)| r)
}

/// Repo-relative paths changed vs `gitref` (tracked diff + untracked files),
/// for `--changed-only`. Shells out to git; any failure is an error rather
/// than a silent full run, so a bad ref cannot masquerade as a clean gate.
fn changed_files(
    repo: &Path,
    gitref: &str,
) -> Result<std::collections::BTreeSet<String>, std::io::Error> {
    let mut out = std::collections::BTreeSet::new();
    for argset in [
        &["diff", "--name-only", gitref, "--"][..],
        &["ls-files", "--others", "--exclude-standard"][..],
    ] {
        let run = std::process::Command::new("git")
            .arg("-C")
            .arg(repo)
            .args(argset)
            .output()?;
        if !run.status.success() {
            return Err(std::io::Error::other(format!(
                "git {} failed: {}",
                argset.join(" "),
                String::from_utf8_lossy(&run.stderr).trim()
            )));
        }
        for line in String::from_utf8_lossy(&run.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                out.insert(line.replace('\\', "/"));
            }
        }
    }
    Ok(out)
}

/// Removes unused `// analyze::allow(...)` annotations from their files —
/// the whole line when the comment stands alone, just the trailing-comment
/// portion when code precedes it. Dry-run (`apply == false`) only prints
/// what would change. Returns the sites actually (or would-be) removed;
/// sites whose line no longer carries the marker (e.g. a block comment or a
/// stale report) are skipped with a note rather than guessed at.
pub fn apply_suppression_fixes(
    repo: &Path,
    sites: &[UnusedSite],
    apply: bool,
) -> Result<Vec<UnusedSite>, std::io::Error> {
    let mut by_file: BTreeMap<&str, Vec<&UnusedSite>> = BTreeMap::new();
    for s in sites {
        by_file.entry(s.file.as_str()).or_default().push(s);
    }
    let mut fixed = Vec::new();
    for (rel, file_sites) in by_file {
        let path = repo.join(rel);
        let src = std::fs::read_to_string(&path)?;
        let had_final_newline = src.ends_with('\n');
        let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
        // Edit bottom-up so earlier removals don't shift later line numbers.
        let mut ordered: Vec<&UnusedSite> = file_sites;
        ordered.sort_by_key(|s| std::cmp::Reverse(s.comment_line));
        let mut touched = false;
        for s in ordered {
            let Some(line) = lines.get(s.comment_line - 1) else {
                eprintln!(
                    "analyze: fix-suppressions: {rel}:{}: line out of range, skipped",
                    s.comment_line
                );
                continue;
            };
            let Some(at) = line.find("// analyze::allow(") else {
                eprintln!(
                    "analyze: fix-suppressions: {rel}:{}: no `// analyze::allow(` \
                     marker on the line, skipped",
                    s.comment_line
                );
                continue;
            };
            if apply {
                if line[..at].trim().is_empty() {
                    lines.remove(s.comment_line - 1);
                } else {
                    let code = line[..at].trim_end().to_string();
                    lines[s.comment_line - 1] = code;
                }
                touched = true;
                eprintln!(
                    "analyze: fix-suppressions: removed {rel}:{}: analyze::allow({})",
                    s.comment_line, s.pass
                );
            } else {
                eprintln!(
                    "analyze: fix-suppressions: would remove {rel}:{}: \
                     analyze::allow({}) (re-run with --apply)",
                    s.comment_line, s.pass
                );
            }
            fixed.push(s.clone());
        }
        if apply && touched {
            let mut text = lines.join("\n");
            if had_final_newline {
                text.push('\n');
            }
            std::fs::write(&path, text)?;
        }
    }
    Ok(fixed)
}

/// Stage 1: produces one [`FileRecord`] per file, fanning out over scoped
/// threads in contiguous chunks (lock-free: each worker owns its slice and
/// its output; merge order is file order, so the result is identical for
/// any `jobs`).
fn collect_records(
    repo: &Path,
    files: &[PathBuf],
    opts: &AnalysisOptions,
    stats: &mut AnalysisStats,
) -> Result<Vec<FileRecord>, std::io::Error> {
    let jobs = opts.jobs.max(1).min(files.len().max(1));
    let cache_dir = opts.cache_dir.as_deref();

    if jobs == 1 {
        let mut out = Vec::with_capacity(files.len());
        for file in files {
            let (rec, hit) = file_record(repo, file, cache_dir)?;
            if hit {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
            }
            out.push(rec);
        }
        return Ok(out);
    }

    // Contiguous chunk partition, one worker per chunk; workers return
    // their chunk's records in order and the merge concatenates chunks in
    // order — the same static-partition discipline as `tt_linalg::par`.
    let chunk = files.len().div_ceil(jobs);
    let chunks: Vec<&[PathBuf]> = files.chunks(chunk).collect();
    let results: Vec<Result<Vec<(FileRecord, bool)>, std::io::Error>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|slice| {
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(slice.len());
                        for file in *slice {
                            out.push(file_record(repo, file, cache_dir)?);
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        // A worker panic (pass bug on some input) degrades
                        // to an I/O-style error instead of tearing down the
                        // whole process with a second panic.
                        Err(std::io::Error::other("analysis worker panicked"))
                    })
                })
                .collect()
        });

    let mut out = Vec::with_capacity(files.len());
    for r in results {
        for (rec, hit) in r? {
            if hit {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
            }
            out.push(rec);
        }
    }
    Ok(out)
}

/// The per-file unit of work: cache lookup, else scan + per-file passes +
/// suppression parse + summary extraction (then cache store). Returns the
/// record and whether it was a cache hit.
fn file_record(
    repo: &Path,
    file: &Path,
    cache_dir: Option<&Path>,
) -> Result<(FileRecord, bool), std::io::Error> {
    let rel = file
        .strip_prefix(repo)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/");
    let src = std::fs::read_to_string(file)?;
    if let Some(dir) = cache_dir {
        if let Some(rec) = cache::load(dir, &rel, &src) {
            return Ok((rec, true));
        }
    }

    let model = CodeModel::build(&src);
    let mut errors = Vec::new();
    let pass_names = all_pass_names();
    let suppressions = parse_suppressions(&rel, &model, &pass_names, &mut errors);

    let mut findings = Vec::new();
    for pass in all_passes() {
        if pass.allowlist().iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        pass.run(&rel, &model, &mut findings);
    }
    let summary = FileSummary::extract(&rel, &model);
    let rec = FileRecord {
        summary,
        findings,
        suppressions,
        errors,
    };
    if let Some(dir) = cache_dir {
        // Best-effort: a full disk or unwritable target/ slows the next
        // run down, it must not fail this one.
        let _ = cache::store(dir, &rel, &src, &rec);
    }
    Ok((rec, false))
}

/// Extracts `analyze::allow` annotations from a file's comments, recording
/// malformed ones (unknown pass, missing reason) into `errors`. Valid pass
/// names are the union of per-file and interprocedural passes.
pub(crate) fn parse_suppressions(
    rel: &str,
    model: &CodeModel,
    pass_names: &[&'static str],
    errors: &mut Vec<String>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &model.comments {
        // Strip the comment markers; block comments may carry one
        // annotation too (rare, but no reason to reject them).
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("analyze::allow") else {
            continue;
        };
        let parsed = rest
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .and_then(|(pass, tail)| {
                let reason = tail.strip_prefix(':')?.trim();
                if reason.is_empty() {
                    None
                } else {
                    Some((pass.trim().to_string(), reason.to_string()))
                }
            });
        let Some((pass, reason)) = parsed else {
            errors.push(format!(
                "{rel}:{}: malformed suppression `{body}` — expected \
                 `analyze::allow(<pass>): <reason>` with a non-empty reason",
                c.line
            ));
            continue;
        };
        if !pass_names.contains(&pass.as_str()) {
            errors.push(format!(
                "{rel}:{}: suppression names unknown pass `{pass}` (see --list-passes)",
                c.line
            ));
            continue;
        }
        // Trailing comments (code earlier on the same line) suppress that
        // line; standalone comments suppress the next code line.
        // (`model.tokens` holds code tokens only, so a same-line hit means
        // the comment trails code.)
        let trailing = model.tokens.iter().any(|t| t.line == c.line);
        let target_line = if trailing {
            c.line
        } else {
            model
                .tokens
                .iter()
                .map(|t| t.line)
                .filter(|&l| l > c.line)
                .min()
                .unwrap_or(usize::MAX)
        };
        out.push(Suppression {
            pass,
            reason,
            target_line,
            comment_line: c.line,
        });
    }
    out
}

/// Serializes the report as one JSON object (no serde in-tree; the escape
/// set covers everything `Diagnostic` messages can contain).
fn report_to_json(report: &Report, check_suppressions: bool) -> String {
    let mut s = String::from("{\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"pass\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(d.pass),
            json_str(&d.file),
            d.line,
            json_str(&d.message)
        );
    }
    let _ = write!(s, "],\"suppressed\":{},\"errors\":[", report.suppressed);
    for (i, e) in report.errors.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json_str(e));
    }
    s.push_str("],\"unused_suppressions\":[");
    for (i, u) in report.unused.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json_str(u));
    }
    let _ = write!(
        s,
        "],\"files\":{},\"clean\":{}}}",
        report.files,
        report.is_clean(check_suppressions)
    );
    s
}

/// Minimal JSON string escaping (shared with the SARIF writer).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suppressions_of(src: &str) -> (Vec<Suppression>, Vec<String>) {
        let model = CodeModel::build(src);
        let names = all_pass_names();
        let mut errors = Vec::new();
        let sup = parse_suppressions("t.rs", &model, &names, &mut errors);
        (sup, errors)
    }

    #[test]
    fn trailing_suppression_targets_its_own_line() {
        let (sup, errors) =
            suppressions_of("fn f() {\n    x.unwrap(); // analyze::allow(panic_surface): ok\n}\n");
        assert!(errors.is_empty());
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].target_line, 2);
        assert_eq!(sup[0].pass, "panic_surface");
        assert_eq!(sup[0].reason, "ok");
    }

    #[test]
    fn standalone_suppression_targets_next_code_line() {
        let (sup, errors) = suppressions_of(
            "fn f() {\n    // analyze::allow(float_cmp): exact sentinel\n\n    if x == 0.0 {}\n}\n",
        );
        assert!(errors.is_empty());
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].target_line, 4);
    }

    #[test]
    fn graph_pass_names_are_valid_suppression_targets() {
        let (sup, errors) = suppressions_of(
            "// analyze::allow(determinism): partition-only\nfn f() {}\n\
             // analyze::allow(collective_order): uniform\nfn g() {}\n\
             // analyze::allow(alloc_hot_path): warm-up\nfn h() {}\n",
        );
        assert!(errors.is_empty(), "errors: {errors:?}");
        assert_eq!(sup.len(), 3);
    }

    #[test]
    fn missing_reason_and_unknown_pass_are_errors() {
        let (sup, errors) = suppressions_of(
            "// analyze::allow(panic_surface):\nfn a() {}\n// analyze::allow(bogus): reason\nfn b() {}\n",
        );
        assert!(sup.is_empty());
        assert_eq!(errors.len(), 2);
        assert!(errors[0].contains("malformed"));
        assert!(errors[1].contains("unknown pass"));
    }

    #[test]
    fn json_escaping_is_valid() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn stats_render_reports_hit_rate() {
        let stats = AnalysisStats {
            files: 4,
            cache_hits: 3,
            cache_misses: 1,
            graph_nodes: 10,
            graph_edges: 20,
            resolved_calls: 15,
            ambiguous_calls: 2,
            external_calls: 3,
            dist_covered: 5,
            dist_uncovered: 1,
        };
        let line = stats.render();
        assert!(line.contains("4 files"));
        assert!(line.contains("75.0% hit rate"));
        assert!(line.contains("10 nodes / 20 edges"));
        assert!(line.contains("2 ambiguous"));
        assert!(line.contains("skeletons: 5/6 public _dist entry points covered (1 uncovered)"));
    }
}
