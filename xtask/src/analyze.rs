//! `cargo xtask analyze` — the SPMD collective-safety and numeric-discipline
//! static analyzer (DESIGN.md §8).
//!
//! Runs every registered [`crate::passes::Pass`] over the non-test library
//! sources (the same [`crate::LIBRARY_SRC_ROOTS`] trees the unwrap lint
//! covers), applies per-pass path allowlists, and reconciles findings
//! against in-source suppressions:
//!
//! ```text
//! // analyze::allow(<pass>): <reason>
//! ```
//!
//! A suppression written as a trailing comment applies to its own line; one
//! on a line of its own applies to the next code line (so several can be
//! stacked above one statement). The reason is mandatory — an accepted
//! finding must be documented at the site — and the pass name must exist.
//! Suppressions that match no diagnostic are themselves errors (on by
//! default; nightly CI passes `--check-suppressions` explicitly, local
//! triage can pass `--no-check-suppressions` while iterating), so stale
//! annotations cannot accumulate.
//!
//! Exit code is non-zero on any unsuppressed diagnostic, malformed
//! suppression, or (when checking) unused suppression. `--format json`
//! emits the full report as a single JSON object on stdout for tooling.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::passes::{all_passes, Diagnostic, Pass};
use crate::scanner::CodeModel;
use crate::{collect_rs_files, LIBRARY_SRC_ROOTS};

/// One parsed `// analyze::allow(<pass>): <reason>` annotation.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Pass the annotation silences.
    pub pass: String,
    /// Mandatory justification text.
    pub reason: String,
    /// Line the suppression applies to (its own line for trailing
    /// comments, the next code line for standalone ones).
    pub target_line: usize,
    /// Line the comment itself sits on (for reporting).
    pub comment_line: usize,
}

/// Full result of one analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by any suppression.
    pub diagnostics: Vec<Diagnostic>,
    /// Count of findings silenced by a suppression.
    pub suppressed: usize,
    /// Malformed suppression annotations (unknown pass, missing reason).
    pub errors: Vec<String>,
    /// Suppressions that silenced nothing, as `file:line: pass` strings.
    pub unused: Vec<String>,
    /// Number of files analyzed.
    pub files: usize,
}

impl Report {
    /// True when the gate should pass.
    pub fn is_clean(&self, check_suppressions: bool) -> bool {
        self.diagnostics.is_empty()
            && self.errors.is_empty()
            && (!check_suppressions || self.unused.is_empty())
    }
}

/// CLI entry point for `cargo xtask analyze`.
pub fn analyze(repo: &Path, args: &[String]) -> ExitCode {
    let mut format_json = false;
    let mut check_suppressions = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!(
                        "analyze: --format expects `text` or `json`, got {:?}",
                        other.unwrap_or("<nothing>")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--format=json" => format_json = true,
            "--format=text" => format_json = false,
            "--check-suppressions" => check_suppressions = true,
            "--no-check-suppressions" => check_suppressions = false,
            "--list-passes" => {
                for p in all_passes() {
                    eprintln!("{:16} {}", p.name(), p.description());
                    if !p.allowlist().is_empty() {
                        eprintln!("{:16}   (not run on: {})", "", p.allowlist().join(", "));
                    }
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!(
                    "analyze: unknown flag `{other}`\n\
                     usage: cargo xtask analyze [--format text|json] \
                     [--no-check-suppressions] [--check-suppressions] [--list-passes]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let mut files = Vec::new();
    for root in LIBRARY_SRC_ROOTS {
        if let Err(e) = collect_rs_files(&repo.join(root), &mut files) {
            eprintln!("analyze: could not walk {root}: {e}");
            return ExitCode::FAILURE;
        }
    }
    files.sort();

    let report = match analyze_files(repo, &files) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::FAILURE;
        }
    };

    if format_json {
        // stdout on purpose (the one machine-readable surface); the clippy
        // print_stdout deny is satisfied by writing the handle directly.
        let mut stdout = std::io::stdout();
        if writeln!(stdout, "{}", report_to_json(&report, check_suppressions)).is_err() {
            return ExitCode::FAILURE;
        }
    } else {
        for d in &report.diagnostics {
            eprintln!("analyze: {}:{}: [{}] {}", d.file, d.line, d.pass, d.message);
        }
        for e in &report.errors {
            eprintln!("analyze: {e}");
        }
        if check_suppressions {
            for u in &report.unused {
                eprintln!("analyze: {u}: suppression matches no diagnostic — remove it");
            }
        }
        eprintln!(
            "analyze: {} files, {} passes, {} diagnostics ({} suppressed), {} suppression errors{}",
            report.files,
            all_passes().len(),
            report.diagnostics.len(),
            report.suppressed,
            report.errors.len(),
            if check_suppressions {
                format!(", {} unused suppressions", report.unused.len())
            } else {
                String::new()
            },
        );
    }

    if report.is_clean(check_suppressions) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs every pass over `files` (paths made repo-relative against `repo`
/// for diagnostics and allowlist matching) and reconciles suppressions.
/// This is the library surface the fixture tests drive directly.
pub fn analyze_files(repo: &Path, files: &[PathBuf]) -> Result<Report, std::io::Error> {
    let passes = all_passes();
    let mut report = Report::default();
    for file in files {
        let rel = file
            .strip_prefix(repo)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(file)?;
        let model = CodeModel::build(&src);
        let mut suppressions = parse_suppressions(&rel, &model, &passes, &mut report.errors);

        let mut findings = Vec::new();
        for pass in &passes {
            if pass.allowlist().iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            pass.run(&rel, &model, &mut findings);
        }
        findings.sort_by(|a, b| (a.line, a.pass).cmp(&(b.line, b.pass)));

        let mut used = vec![false; suppressions.len()];
        for d in findings {
            let hit = suppressions
                .iter()
                .position(|s| s.pass == d.pass && s.target_line == d.line);
            match hit {
                Some(k) => {
                    used[k] = true;
                    report.suppressed += 1;
                }
                None => report.diagnostics.push(d),
            }
        }
        for (k, s) in suppressions.drain(..).enumerate() {
            if !used[k] {
                report.unused.push(format!(
                    "{rel}:{}: analyze::allow({})",
                    s.comment_line, s.pass
                ));
            }
        }
        report.files += 1;
    }
    Ok(report)
}

/// Extracts `analyze::allow` annotations from a file's comments, recording
/// malformed ones (unknown pass, missing reason) into `errors`.
fn parse_suppressions(
    rel: &str,
    model: &CodeModel,
    passes: &[Box<dyn Pass>],
    errors: &mut Vec<String>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &model.comments {
        // Strip the comment markers; block comments may carry one
        // annotation too (rare, but no reason to reject them).
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("analyze::allow") else {
            continue;
        };
        let parsed = rest
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .and_then(|(pass, tail)| {
                let reason = tail.strip_prefix(':')?.trim();
                if reason.is_empty() {
                    None
                } else {
                    Some((pass.trim().to_string(), reason.to_string()))
                }
            });
        let Some((pass, reason)) = parsed else {
            errors.push(format!(
                "{rel}:{}: malformed suppression `{body}` — expected \
                 `analyze::allow(<pass>): <reason>` with a non-empty reason",
                c.line
            ));
            continue;
        };
        if !passes.iter().any(|p| p.name() == pass) {
            errors.push(format!(
                "{rel}:{}: suppression names unknown pass `{pass}` (see --list-passes)",
                c.line
            ));
            continue;
        }
        // Trailing comments (code earlier on the same line) suppress that
        // line; standalone comments suppress the next code line.
        // (`model.tokens` holds code tokens only, so a same-line hit means
        // the comment trails code.)
        let trailing = model.tokens.iter().any(|t| t.line == c.line);
        let target_line = if trailing {
            c.line
        } else {
            model
                .tokens
                .iter()
                .map(|t| t.line)
                .filter(|&l| l > c.line)
                .min()
                .unwrap_or(usize::MAX)
        };
        out.push(Suppression {
            pass,
            reason,
            target_line,
            comment_line: c.line,
        });
    }
    out
}

/// Serializes the report as one JSON object (no serde in-tree; the escape
/// set covers everything `Diagnostic` messages can contain).
fn report_to_json(report: &Report, check_suppressions: bool) -> String {
    let mut s = String::from("{\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"pass\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(d.pass),
            json_str(&d.file),
            d.line,
            json_str(&d.message)
        );
    }
    let _ = write!(s, "],\"suppressed\":{},\"errors\":[", report.suppressed);
    for (i, e) in report.errors.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json_str(e));
    }
    s.push_str("],\"unused_suppressions\":[");
    for (i, u) in report.unused.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json_str(u));
    }
    let _ = write!(
        s,
        "],\"files\":{},\"clean\":{}}}",
        report.files,
        report.is_clean(check_suppressions)
    );
    s
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suppressions_of(src: &str) -> (Vec<Suppression>, Vec<String>) {
        let model = CodeModel::build(src);
        let passes = all_passes();
        let mut errors = Vec::new();
        let sup = parse_suppressions("t.rs", &model, &passes, &mut errors);
        (sup, errors)
    }

    #[test]
    fn trailing_suppression_targets_its_own_line() {
        let (sup, errors) =
            suppressions_of("fn f() {\n    x.unwrap(); // analyze::allow(panic_surface): ok\n}\n");
        assert!(errors.is_empty());
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].target_line, 2);
        assert_eq!(sup[0].pass, "panic_surface");
        assert_eq!(sup[0].reason, "ok");
    }

    #[test]
    fn standalone_suppression_targets_next_code_line() {
        let (sup, errors) = suppressions_of(
            "fn f() {\n    // analyze::allow(float_cmp): exact sentinel\n\n    if x == 0.0 {}\n}\n",
        );
        assert!(errors.is_empty());
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].target_line, 4);
    }

    #[test]
    fn missing_reason_and_unknown_pass_are_errors() {
        let (sup, errors) = suppressions_of(
            "// analyze::allow(panic_surface):\nfn a() {}\n// analyze::allow(bogus): reason\nfn b() {}\n",
        );
        assert!(sup.is_empty());
        assert_eq!(errors.len(), 2);
        assert!(errors[0].contains("malformed"));
        assert!(errors[1].contains("unknown pass"));
    }

    #[test]
    fn json_escaping_is_valid() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
