//! Content-hash cache for per-file analysis records (DESIGN.md §10).
//!
//! The analyzer runs on every push from the CI lint job, and with the
//! interprocedural layer it now scans the whole workspace *and* builds a
//! call graph per run. The graph build and fact propagation are cheap
//! (linear in summaries); the expensive part is per-file — reading,
//! scanning, running the per-file passes. Those results depend only on the
//! file's bytes and the analyzer version, so they cache perfectly:
//!
//! * key — FNV-1a 64 hash of the file content, salted with
//!   [`CACHE_VERSION`] (bump it whenever scanner/pass/summary semantics
//!   change, so stale records self-invalidate);
//! * value — the full [`FileRecord`]: the call-graph
//!   [`FileSummary`], the per-file pass diagnostics, the parsed
//!   suppressions, and any suppression errors;
//! * location — `target/analyze-cache/<mangled-rel-path>.rec`, one file
//!   per source file so a single edit invalidates exactly one record.
//!
//! The format is a line-based, tab-separated text serialization (no serde
//! in-tree, same constraint as the JSON report writer). *Any* anomaly while
//! parsing — wrong header, unknown record tag, unknown pass name, short
//! row — degrades to a cache miss, never to an error: the cache is purely
//! an accelerator and the analyzer must behave identically with it cold,
//! warm, or corrupted. `--stats` reports the hit/miss split so the warm-run
//! speedup is visible, and `--no-cache` bypasses it entirely.

use std::io;
use std::path::{Path, PathBuf};

use crate::analyze::Suppression;
use crate::callgraph::{CallSite, Evidence, FileSummary, FnSummary};
use crate::passes::{all_pass_names, Diagnostic};
use crate::skeleton::{from_wire, to_wire, Skel};

/// Serialization-format / analysis-semantics version. Part of the hash
/// salt: bump on any change to the scanner, the summary extraction, or a
/// per-file pass, and every existing record becomes a miss.
pub const CACHE_VERSION: u32 = 3;

/// Everything the per-file stage of the analysis produces for one source
/// file — exactly what the workspace stage (graph build + reconciliation)
/// consumes, so a cache hit skips the file read-scan-summarize-pass work
/// entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct FileRecord {
    /// Call-graph summary (carries the repo-relative path).
    pub summary: FileSummary,
    /// Per-file pass findings (pre-suppression).
    pub findings: Vec<Diagnostic>,
    /// Parsed suppression annotations.
    pub suppressions: Vec<Suppression>,
    /// Malformed-suppression errors.
    pub errors: Vec<String>,
}

/// Default cache directory under the build tree.
pub fn default_cache_dir(repo: &Path) -> PathBuf {
    repo.join("target").join("analyze-cache")
}

/// FNV-1a 64-bit content hash (tiny, dependency-free, and stable across
/// platforms — collision resistance is not a goal; a collision merely
/// serves a stale record for one file until its next edit).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Record path for one source file: the relative path with separators
/// mangled so every record is a flat sibling.
fn record_path(dir: &Path, rel: &str) -> PathBuf {
    let mangled: String = rel
        .chars()
        .map(|c| if c == '/' || c == '\\' { '+' } else { c })
        .collect();
    dir.join(format!("{mangled}.rec"))
}

/// Loads the cached record for `rel` if one exists and its stored hash
/// matches `src`. Every failure mode is a `None` (see module docs).
pub fn load(dir: &Path, rel: &str, src: &str) -> Option<FileRecord> {
    let text = std::fs::read_to_string(record_path(dir, rel)).ok()?;
    let mut lines = text.lines();
    let expect = format!(
        "analyze-cache v{CACHE_VERSION} {:016x}",
        fnv1a64(src.as_bytes())
    );
    if lines.next() != Some(expect.as_str()) {
        return None;
    }
    parse_record(rel, lines)
}

/// Writes the record for `rel`. I/O errors propagate (the driver reports
/// them as warnings, not failures).
pub fn store(dir: &Path, rel: &str, src: &str, rec: &FileRecord) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut out = String::new();
    out.push_str(&format!(
        "analyze-cache v{CACHE_VERSION} {:016x}\n",
        fnv1a64(src.as_bytes())
    ));
    write_record(&mut out, rec);
    // Write-then-rename so a crashed run cannot leave a torn record that
    // parses (any torn state fails the parse and degrades to a miss; the
    // rename just avoids even that window).
    let path = record_path(dir, rel);
    let tmp = path.with_extension("rec.tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, &path)
}

/// Escapes one field for the tab-separated format.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`esc`]; `None` on a dangling escape.
fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

fn write_record(out: &mut String, rec: &FileRecord) {
    use std::fmt::Write as _;
    let s = &rec.summary;
    for (name, path) in &s.uses {
        let _ = write!(out, "use\t{}", esc(name));
        for seg in path {
            let _ = write!(out, "\t{}", esc(seg));
        }
        out.push('\n');
    }
    for name in &s.dist_decls {
        let _ = writeln!(out, "distdecl\t{}", esc(name));
    }
    for f in &s.fns {
        let _ = writeln!(
            out,
            "fn\t{}\t{}\t{}",
            esc(&f.name),
            f.line,
            u8::from(f.is_pub)
        );
        for c in &f.calls {
            let _ = writeln!(
                out,
                "call\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                esc(&c.callee),
                c.qualifier
                    .as_deref()
                    .map(esc)
                    .unwrap_or_else(|| "-".to_string()),
                u8::from(c.is_method),
                c.line,
                u8::from(c.in_rank_cond),
                c.after_rank_return
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                u8::from(c.in_loop),
            );
        }
        if let Some(e) = &f.collective {
            let _ = writeln!(out, "coll\t{}\t{}", esc(&e.what), e.line);
        }
        if let Some(e) = &f.p2p {
            let _ = writeln!(out, "p2p\t{}\t{}", esc(&e.what), e.line);
        }
        let _ = writeln!(out, "skel\t{}", esc(&to_wire(&f.skeleton)));
        for e in &f.nondet {
            let _ = writeln!(out, "nondet\t{}\t{}", esc(&e.what), e.line);
        }
        for (e, in_loop) in &f.allocs {
            let _ = writeln!(
                out,
                "alloc\t{}\t{}\t{}",
                esc(&e.what),
                e.line,
                u8::from(*in_loop)
            );
        }
    }
    for d in &rec.findings {
        let _ = writeln!(
            out,
            "diag\t{}\t{}\t{}",
            esc(d.pass),
            d.line,
            esc(&d.message)
        );
    }
    for sp in &rec.suppressions {
        let _ = writeln!(
            out,
            "sup\t{}\t{}\t{}\t{}",
            esc(&sp.pass),
            esc(&sp.reason),
            sp.target_line,
            sp.comment_line
        );
    }
    for e in &rec.errors {
        let _ = writeln!(out, "err\t{}", esc(e));
    }
}

fn parse_record<'a>(rel: &str, lines: impl Iterator<Item = &'a str>) -> Option<FileRecord> {
    let pass_names = all_pass_names();
    let mut rec = FileRecord {
        summary: FileSummary {
            path: rel.to_string(),
            ..FileSummary::default()
        },
        findings: Vec::new(),
        suppressions: Vec::new(),
        errors: Vec::new(),
    };
    for line in lines {
        let mut fields = line.split('\t');
        match fields.next()? {
            "use" => {
                let name = unesc(fields.next()?)?;
                let path: Option<Vec<String>> = fields.map(unesc).collect();
                rec.summary.uses.insert(name, path?);
            }
            "fn" => {
                rec.summary.fns.push(FnSummary {
                    name: unesc(fields.next()?)?,
                    line: fields.next()?.parse().ok()?,
                    calls: Vec::new(),
                    collective: None,
                    nondet: Vec::new(),
                    allocs: Vec::new(),
                    p2p: None,
                    is_pub: fields.next()? == "1",
                    skeleton: Skel::empty(),
                });
            }
            "call" => {
                let f = rec.summary.fns.last_mut()?;
                let callee = unesc(fields.next()?)?;
                let qual_raw = fields.next()?;
                let qualifier = if qual_raw == "-" {
                    None
                } else {
                    Some(unesc(qual_raw)?)
                };
                let is_method = fields.next()? == "1";
                let line = fields.next()?.parse().ok()?;
                let in_rank_cond = fields.next()? == "1";
                let ret_raw = fields.next()?;
                let after_rank_return = if ret_raw == "-" {
                    None
                } else {
                    Some(ret_raw.parse().ok()?)
                };
                let in_loop = fields.next()? == "1";
                f.calls.push(CallSite {
                    callee,
                    qualifier,
                    is_method,
                    line,
                    in_rank_cond,
                    after_rank_return,
                    in_loop,
                });
            }
            "coll" => {
                let f = rec.summary.fns.last_mut()?;
                f.collective = Some(Evidence {
                    what: unesc(fields.next()?)?,
                    line: fields.next()?.parse().ok()?,
                });
            }
            "p2p" => {
                let f = rec.summary.fns.last_mut()?;
                f.p2p = Some(Evidence {
                    what: unesc(fields.next()?)?,
                    line: fields.next()?.parse().ok()?,
                });
            }
            "skel" => {
                let f = rec.summary.fns.last_mut()?;
                f.skeleton = from_wire(&unesc(fields.next()?)?)?;
            }
            "distdecl" => {
                rec.summary.dist_decls.push(unesc(fields.next()?)?);
            }
            "nondet" => {
                let f = rec.summary.fns.last_mut()?;
                f.nondet.push(Evidence {
                    what: unesc(fields.next()?)?,
                    line: fields.next()?.parse().ok()?,
                });
            }
            "alloc" => {
                let f = rec.summary.fns.last_mut()?;
                let what = unesc(fields.next()?)?;
                let line = fields.next()?.parse().ok()?;
                let in_loop = fields.next()? == "1";
                f.allocs.push((Evidence { what, line }, in_loop));
            }
            "diag" => {
                // `Diagnostic.pass` is `&'static str`: map the stored name
                // back through the registry; an unknown name means the pass
                // set changed under an unbumped version — treat as a miss.
                let stored = unesc(fields.next()?)?;
                let pass = pass_names.iter().find(|n| **n == stored)?;
                rec.findings.push(Diagnostic {
                    pass,
                    file: rel.to_string(),
                    line: fields.next()?.parse().ok()?,
                    message: unesc(fields.next()?)?,
                });
            }
            "sup" => {
                rec.suppressions.push(Suppression {
                    pass: unesc(fields.next()?)?,
                    reason: unesc(fields.next()?)?,
                    target_line: fields.next()?.parse().ok()?,
                    comment_line: fields.next()?.parse().ok()?,
                });
            }
            "err" => {
                rec.errors.push(unesc(fields.next()?)?);
            }
            _ => return None,
        }
    }
    Some(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> FileRecord {
        let mut summary = FileSummary {
            path: "crates/x/src/lib.rs".to_string(),
            ..FileSummary::default()
        };
        summary.uses.insert(
            "gemm_v".to_string(),
            vec!["tt_linalg".to_string(), "gemm".to_string()],
        );
        summary.dist_decls.push("round_trait_dist".to_string());
        summary.fns.push(FnSummary {
            name: "round_x".to_string(),
            line: 3,
            calls: vec![CallSite {
                callee: "helper".to_string(),
                qualifier: Some("a::b".to_string()),
                is_method: false,
                line: 5,
                in_rank_cond: true,
                after_rank_return: Some(4),
                in_loop: true,
            }],
            collective: Some(Evidence {
                what: "`.barrier()`".to_string(),
                line: 6,
            }),
            nondet: vec![Evidence {
                what: "`HashMap` (nondeterministic iteration order)".to_string(),
                line: 7,
            }],
            allocs: vec![(
                Evidence {
                    what: "`Vec::new`".to_string(),
                    line: 8,
                },
                true,
            )],
            p2p: Some(Evidence {
                what: "`.send()`".to_string(),
                line: 9,
            }),
            is_pub: true,
            skeleton: Skel::Seq(vec![
                Skel::Coll {
                    kind: "barrier".to_string(),
                    tag: crate::skeleton::Expr::Unknown,
                    line: 6,
                },
                Skel::Send {
                    peer: crate::skeleton::Expr::Rank,
                    line: 9,
                },
            ]),
        });
        FileRecord {
            summary,
            findings: vec![Diagnostic {
                pass: "rank_collective",
                file: "crates/x/src/lib.rs".to_string(),
                line: 6,
                message: "tab\there \"and\" newline\nthere".to_string(),
            }],
            suppressions: vec![Suppression {
                pass: "panic_surface".to_string(),
                reason: "backslash \\ reason".to_string(),
                target_line: 9,
                comment_line: 9,
            }],
            errors: vec!["some\terror".to_string()],
        }
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let rec = sample_record();
        let mut text = String::new();
        write_record(&mut text, &rec);
        let parsed = parse_record("crates/x/src/lib.rs", text.lines()).expect("parse");
        assert_eq!(parsed, rec);
    }

    #[test]
    fn store_and_load_hit_on_same_content_miss_on_different() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../target/analyze-cache-unit-test");
        let rec = sample_record();
        store(&dir, "crates/x/src/lib.rs", "fn round_x() {}", &rec).expect("store");
        let hit = load(&dir, "crates/x/src/lib.rs", "fn round_x() {}");
        assert_eq!(hit, Some(rec));
        assert_eq!(load(&dir, "crates/x/src/lib.rs", "fn round_x() { }"), None);
        assert_eq!(load(&dir, "crates/other.rs", "fn round_x() {}"), None);
    }

    #[test]
    fn corrupt_records_degrade_to_miss() {
        for text in [
            "",
            "analyze-cache v0 0000000000000000",
            "bogus header\nfn\tx\t1",
        ] {
            assert!(parse_header_and_record(text).is_none());
        }
        // Valid header, garbage body.
        assert!(parse_record("x.rs", "call\tmissing\tfields".lines()).is_none());
        assert!(parse_record("x.rs", "unknown_tag\tx".lines()).is_none());
        assert!(parse_record("x.rs", "fn\tbad_line\tnot_a_number".lines()).is_none());
        // Records for fn-scoped rows with no preceding fn.
        assert!(parse_record("x.rs", "nondet\tx\t1".lines()).is_none());
    }

    fn parse_header_and_record(text: &str) -> Option<FileRecord> {
        let mut lines = text.lines();
        let first = lines.next()?;
        if !first.starts_with(&format!("analyze-cache v{CACHE_VERSION} ")) {
            return None;
        }
        parse_record("x.rs", lines)
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
