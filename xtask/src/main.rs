//! Workspace automation (the cargo `xtask` pattern: a plain binary crate
//! invoked through the `.cargo/config.toml` alias, so the whole toolchain
//! needs nothing but `cargo` itself).
//!
//! `cargo xtask lint` is the repo's static-analysis gate (DESIGN.md §7):
//!
//! 1. `cargo fmt --all -- --check` — formatting drift fails the build;
//! 2. `cargo clippy --workspace --all-targets` with a curated deny-list;
//! 3. a custom source lint forbidding `.unwrap()` / `.expect(` in non-test
//!    library code (panics in library paths must be structured, like the
//!    diagnostics in `tt-comm`, or converted to `Result`s);
//! 4. an audit that every crate root opts into `#![forbid(unsafe_code)]`.
//!
//! `cargo xtask bench-check` is the kernel performance gate (see
//! [`bench_check`]): it runs the blocked-vs-reference benchmark pairs and
//! fails on a missing speedup or a >15% regression against the recorded
//! `results/BENCH_kernels.json` baseline.

#![forbid(unsafe_code)]

mod bench_check;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Clippy lints promoted to errors. Curated rather than `-D warnings` so a
/// new toolchain's fresh lints do not brick the gate; extend deliberately.
const CLIPPY_DENY: &[&str] = &[
    "warnings",
    "clippy::dbg_macro",
    "clippy::todo",
    "clippy::unimplemented",
    "clippy::print_stdout",
];

/// Directories holding non-test library sources, relative to the repo root.
/// `tests/`, `benches/`, and `examples/` trees are exempt from the
/// unwrap/expect lint; `#[cfg(test)]` modules inside these sources are
/// skipped by region tracking.
const LIBRARY_SRC_ROOTS: &[&str] = &["crates", "src", "vendor", "xtask/src"];

/// Every crate root that must carry `#![forbid(unsafe_code)]`.
fn crate_roots(repo: &Path) -> Vec<PathBuf> {
    let mut roots = vec![repo.join("src/lib.rs"), repo.join("xtask/src/main.rs")];
    for dir in ["crates", "vendor"] {
        let Ok(entries) = std::fs::read_dir(repo.join(dir)) else {
            continue;
        };
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.sort();
    roots
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("bench-check") => bench_check::bench_check(&repo_root(), &args[1..]),
        Some(other) => {
            eprintln!("unknown xtask `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <task>\n\ntasks:\n  lint                   rustfmt check, clippy deny-list, unwrap/expect source lint, forbid(unsafe_code) audit\n  bench-check [--record] run kernels_* benches; gate blocked-GEMM speedup and >15% regressions vs results/BENCH_kernels.json");
}

fn lint() -> ExitCode {
    let repo = repo_root();
    let mut failures: Vec<String> = Vec::new();

    run_step(
        &mut failures,
        "rustfmt",
        Command::new("cargo").args(["fmt", "--all", "--", "--check"]),
    );

    let mut clippy = Command::new("cargo");
    clippy.args(["clippy", "--workspace", "--all-targets", "--quiet", "--"]);
    for lint in CLIPPY_DENY {
        clippy.arg("-D").arg(lint);
    }
    // Targets whose job is user-facing stdout (tt-bench bins, examples, the
    // criterion shim) carry `#![allow(clippy::print_stdout)]` inline; the
    // deny stays meaningful for every library crate.
    run_step(&mut failures, "clippy", &mut clippy);

    match unwrap_lint(&repo) {
        Ok(0) => eprintln!("lint: unwrap/expect source lint .......... ok"),
        Ok(n) => failures.push(format!(
            "{n} unwrap()/expect() uses in non-test library code"
        )),
        Err(e) => failures.push(format!("unwrap/expect lint could not run: {e}")),
    }

    match unsafe_audit(&repo) {
        Ok(()) => eprintln!("lint: forbid(unsafe_code) audit ......... ok"),
        Err(missing) => failures.push(format!(
            "crate roots missing #![forbid(unsafe_code)]: {}",
            missing.join(", ")
        )),
    }

    if failures.is_empty() {
        eprintln!("lint: all checks passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("lint FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}

fn run_step(failures: &mut Vec<String>, name: &str, cmd: &mut Command) {
    match cmd.status() {
        Ok(status) if status.success() => {
            eprintln!(
                "lint: {name} {} ok",
                ".".repeat(38usize.saturating_sub(name.len()))
            );
        }
        Ok(status) => failures.push(format!("{name} failed with {status}")),
        Err(e) => failures.push(format!("{name} could not run: {e}")),
    }
}

fn repo_root() -> PathBuf {
    // xtask always runs via `cargo xtask`, which sets the manifest dir to
    // <repo>/xtask.
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_string());
    let path = PathBuf::from(&manifest);
    path.parent().map(Path::to_path_buf).unwrap_or(path)
}

/// Scans non-test library sources for `.unwrap()` / `.expect(`, skipping
/// `#[cfg(test)]` regions by brace tracking. Returns the violation count.
fn unwrap_lint(repo: &Path) -> Result<usize, std::io::Error> {
    let mut files = Vec::new();
    for root in LIBRARY_SRC_ROOTS {
        collect_rs_files(&repo.join(root), &mut files)?;
    }
    files.sort();
    let mut violations = 0usize;
    for file in files {
        let text = std::fs::read_to_string(&file)?;
        for (lineno, line) in non_test_lines(&text) {
            let code = strip_comments_and_strings(line);
            if code.contains(".unwrap()") || code.contains(".expect(") {
                violations += 1;
                eprintln!(
                    "lint: {}:{}: unwrap()/expect() in non-test library code: {}",
                    file.strip_prefix(repo).unwrap_or(&file).display(),
                    lineno,
                    line.trim()
                );
            }
        }
    }
    Ok(violations)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), std::io::Error> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Test-only trees are exempt from the library lint.
            if matches!(name.as_ref(), "tests" | "benches" | "examples" | "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Yields `(line_number, line)` for lines outside `#[cfg(test)]`-gated item
/// regions. The region tracker is a brace-depth heuristic: after a
/// `#[cfg(test)]` attribute, everything up to the close of the next
/// brace-delimited item is considered test code. That matches the
/// `#[cfg(test)] mod tests { ... }` idiom used throughout this workspace.
fn non_test_lines(text: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut in_test_region = false;
    let mut pending_test_attr = false;
    let mut depth = 0i64;
    for (i, line) in text.lines().enumerate() {
        let code = strip_comments_and_strings(line);
        if !in_test_region && code.contains("#[cfg(test)]") {
            pending_test_attr = true;
            continue;
        }
        if pending_test_attr {
            // The attribute applies to the next item; start region tracking
            // at its first open brace (or end it immediately for `;` items).
            let opens = code.matches('{').count() as i64;
            let closes = code.matches('}').count() as i64;
            if opens > 0 {
                in_test_region = true;
                pending_test_attr = false;
                depth = opens - closes;
                if depth <= 0 {
                    in_test_region = false;
                }
            } else if code.contains(';') {
                pending_test_attr = false;
            }
            continue;
        }
        if in_test_region {
            depth += code.matches('{').count() as i64;
            depth -= code.matches('}').count() as i64;
            if depth <= 0 {
                in_test_region = false;
            }
            continue;
        }
        out.push((i + 1, line));
    }
    out
}

/// Crude single-line sanitizer: drops `// ...` comments and the contents of
/// string literals so the lint does not fire on prose.
fn strip_comments_and_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut prev = '\0';
    while let Some(c) = chars.next() {
        if in_str {
            if c == '"' && prev != '\\' {
                in_str = false;
                out.push('"');
            }
            prev = if prev == '\\' && c == '\\' { '\0' } else { c };
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => break,
            '"' => {
                in_str = true;
                out.push('"');
            }
            _ => out.push(c),
        }
        prev = c;
    }
    out
}

fn unsafe_audit(repo: &Path) -> Result<(), Vec<String>> {
    let mut missing = Vec::new();
    for root in crate_roots(repo) {
        let ok = std::fs::read_to_string(&root)
            .map(|text| text.contains("#![forbid(unsafe_code)]"))
            .unwrap_or(false);
        if !ok {
            missing.push(
                root.strip_prefix(repo)
                    .unwrap_or(&root)
                    .display()
                    .to_string(),
            );
        }
    }
    if missing.is_empty() {
        Ok(())
    } else {
        Err(missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_are_skipped() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let lines = non_test_lines(src);
        let nums: Vec<usize> = lines.iter().map(|(n, _)| *n).collect();
        assert_eq!(nums, vec![1, 6]);
    }

    #[test]
    fn strings_and_comments_do_not_trip_the_lint() {
        assert!(
            !strip_comments_and_strings("let s = \"call .unwrap() here\";").contains(".unwrap()")
        );
        assert!(!strip_comments_and_strings("// .unwrap() in a comment").contains(".unwrap()"));
        assert!(strip_comments_and_strings("x.unwrap(); // fine").contains(".unwrap()"));
    }

    #[test]
    fn cfg_test_on_single_item_ends_region() {
        let src = "#[cfg(test)]\nfn helper() {\n    z.unwrap();\n}\nfn real() {}\n";
        let nums: Vec<usize> = non_test_lines(src).iter().map(|(n, _)| *n).collect();
        assert_eq!(nums, vec![5]);
    }
}
