//! Thin CLI over the [`xtask`] library: parses the task name and
//! dispatches. All logic lives in the library so the integration tests
//! under `xtask/tests/` can drive it directly.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use xtask::{analyze, bench_check, lint, repo_root};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::lint(&repo_root()),
        Some("analyze") => analyze::analyze(&repo_root(), &args[1..]),
        Some("bench-check") => bench_check::bench_check(&repo_root(), &args[1..]),
        Some(other) => {
            eprintln!("unknown xtask `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask <task>\n\ntasks:\n  \
         lint                   rustfmt check, clippy deny-list, unwrap/expect source lint, forbid(unsafe_code) audit\n  \
         analyze [flags]        SPMD collective-safety + numeric-discipline passes over library sources,\n                         \
         including the interprocedural call-graph passes (collective_order, protocol_match,\n                         \
         deadlock_check, determinism, alloc_hot_path)\n                         \
         (--format text|json|sarif, --list-passes, --stats, --jobs N, --no-cache,\n                         \
         --changed-only[=REF], --fix-suppressions [--apply],\n                         \
         --no-check-suppressions; suppress with `// analyze::allow(<pass>): reason`)\n  \
         bench-check [--record] [--simd]\n                         \
         run kernels_* benches; gate blocked-GEMM speedup (min-time floors) and >15% mean-time\n                         \
         regressions vs results/BENCH_kernels*.json; --simd gates the `simd` feature build\n                         \
         against `_simd`-suffixed baselines with a 3x GEMM floor"
    );
}
