//! Pass `p2p_pairing`: unpaired or deadlock-shaped blocking point-to-point.
//!
//! The `Communicator` `send`/`recv` primitives are blocking (as in the MPI
//! runs the paper reports). Two lexical shapes reliably indicate a bug in
//! SPMD code:
//!
//! 1. a function issuing `send` with no `recv` anywhere in its body (or
//!    vice versa) — with every rank running the same function, the matching
//!    operation can never be posted by a peer *in that function*, so the
//!    pairing lives somewhere else and must at minimum be documented;
//! 2. a rank-symmetric `recv` before any `send`: if the first
//!    point-to-point operation every rank reaches is an unguarded `recv`,
//!    all ranks block waiting for a message none of them has sent yet.
//!
//! Rank-guarded receives (inside `if rank ... {}` or its `else` branches,
//! like the TSQR combine tree's upsweep) are the legitimate pattern and are
//! not flagged. Functions whose own name contains `send`/`recv`
//! (communicator backends, decorators, mailbox helpers) are exempt — they
//! *implement* the primitive rather than use it.

use super::{is_method_call, rank_conditional_mask, Diagnostic, Pass};
use crate::scanner::CodeModel;

/// See the module docs.
pub struct P2pPairing;

impl Pass for P2pPairing {
    fn name(&self) -> &'static str {
        "p2p_pairing"
    }

    fn description(&self) -> &'static str {
        "blocking send/recv without a counterpart in the same function, or recv-before-send \
         orderings that deadlock rank-symmetric code"
    }

    fn run(&self, file: &str, model: &CodeModel, out: &mut Vec<Diagnostic>) {
        let mask = rank_conditional_mask(model);
        for f in &model.fns {
            let Some((body_start, body_end)) = f.body else {
                continue;
            };
            if f.name.contains("send") || f.name.contains("recv") {
                continue;
            }
            if model.in_test.get(f.fn_idx).copied().unwrap_or(false) {
                continue;
            }
            let mut sends: Vec<usize> = Vec::new();
            let mut recvs: Vec<usize> = Vec::new();
            for i in body_start..=body_end.min(model.tokens.len() - 1) {
                if model.in_test[i] {
                    continue;
                }
                // Only direct calls in this fn's innermost body (skip
                // nested fns, which get their own row).
                if model.enclosing_fn(i).map(|g| g.fn_idx) != Some(f.fn_idx) {
                    continue;
                }
                if is_method_call(model, i, "send") {
                    sends.push(i);
                } else if is_method_call(model, i, "recv") {
                    recvs.push(i);
                }
            }
            if sends.is_empty() && recvs.is_empty() {
                continue;
            }
            if sends.is_empty() != recvs.is_empty() {
                let (what, missing, site) = if sends.is_empty() {
                    ("recv", "send", recvs[0])
                } else {
                    ("send", "recv", sends[0])
                };
                out.push(Diagnostic {
                    pass: self.name(),
                    file: file.to_string(),
                    line: model.tokens[site].line,
                    message: format!(
                        "fn `{}` calls blocking `{what}` but never `{missing}`: in SPMD code the \
                         counterpart cannot be posted by a peer running the same function — pair \
                         them or document the cross-function pairing",
                        f.name
                    ),
                });
                continue;
            }
            // Both present: flag an unguarded recv that precedes every send.
            let first_send = sends[0];
            if let Some(&r) = recvs.iter().find(|&&r| !mask[r]) {
                if r < first_send {
                    out.push(Diagnostic {
                        pass: self.name(),
                        file: file.to_string(),
                        line: model.tokens[r].line,
                        message: format!(
                            "fn `{}` blocks in an unconditional `recv` before any `send`: every \
                             rank reaches the recv first and no message is in flight (deadlock); \
                             guard the recv by rank or reorder the exchange",
                            f.name
                        ),
                    });
                }
            }
        }
    }
}
