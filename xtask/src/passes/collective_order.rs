//! Pass `collective_order`: the interprocedural successor of
//! `rank_collective`.
//!
//! `rank_collective` sees one file at a time, so it catches a *direct*
//! `comm.allreduce_sum(..)` inside `if rank == 0 { .. }` — but not the
//! refactored form where the collective moved into a helper and only the
//! *call to the helper* sits behind rank-dependent control flow. The
//! deadlock is identical: ranks that skip the call skip the collective, the
//! rest block in it forever, and `VerifyComm` only notices on a schedule a
//! test happens to run. This pass closes that gap using the workspace call
//! graph: a call site whose callee *transitively issues a collective*
//! (per the propagated facts, with a witness chain naming the path down to
//! the primitive) is flagged when it
//!
//! * sits inside a rank-dependent conditional region, or
//! * follows a rank-guarded early `return` in the same function.
//!
//! Direct collective method calls stay `rank_collective`'s domain (this
//! pass skips edges whose callee *is* a collective primitive, so one
//! hazard never double-reports under two names), and callers named like
//! the collectives themselves are exempt for the same reason as there:
//! a backend implementing `broadcast` may freely branch on rank — that is
//! the collective, not a call site.

use super::{Diagnostic, GraphContext, GraphPass, COLLECTIVES};

/// See the module docs.
pub struct CollectiveOrder;

impl GraphPass for CollectiveOrder {
    fn name(&self) -> &'static str {
        "collective_order"
    }

    fn description(&self) -> &'static str {
        "calls that transitively issue a collective from rank-dependent control flow \
         (interprocedural rank_collective; DESIGN.md §10)"
    }

    fn run(&self, cx: &GraphContext<'_>, out: &mut Vec<Diagnostic>) {
        for (ni, edges) in cx.graph.edges.iter().enumerate() {
            let caller = &cx.graph.nodes[ni];
            // A communicator backend/decorator implementing a collective is
            // rank-dependent by construction.
            if COLLECTIVES.contains(&caller.name.as_str()) {
                continue;
            }
            for edge in edges {
                let site = &edge.site;
                // Direct primitives are rank_collective's finding.
                if COLLECTIVES.contains(&site.callee.as_str()) {
                    continue;
                }
                if !site.in_rank_cond && site.after_rank_return.is_none() {
                    continue;
                }
                // Over-approximation on ambiguous edges: any candidate
                // carrying the fact makes the site suspect; the witness
                // chain tells the reader which resolution was assumed.
                let Some(witness) = edge
                    .targets
                    .iter()
                    .find_map(|&t| cx.facts.collective[t].as_ref())
                else {
                    continue;
                };
                let message = if site.in_rank_cond {
                    format!(
                        "call to `{}` inside a rank-dependent conditional transitively \
                         issues a collective ({}): ranks skipping this branch skip the \
                         collective and the rest deadlock in it — hoist the call or make \
                         the condition rank-uniform",
                        site.callee, witness.chain
                    )
                } else {
                    let ret = site.after_rank_return.unwrap_or(0);
                    format!(
                        "call to `{}` after the rank-guarded early return at line {ret} \
                         transitively issues a collective ({}): returning ranks never \
                         reach it and the rest block forever",
                        site.callee, witness.chain
                    )
                };
                out.push(Diagnostic {
                    pass: self.name(),
                    file: caller.file.clone(),
                    line: site.line,
                    message,
                });
            }
        }
    }
}
