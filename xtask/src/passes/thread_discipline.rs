//! Pass `thread_discipline`: shared-memory parallelism outside the
//! sanctioned fork/join shape.
//!
//! The numeric crates parallelize exactly one way (DESIGN.md §9): the
//! `tt_linalg::par` pool forks scoped threads over *disjoint* output
//! blocks and joins them before returning, which is what makes N-thread
//! results bitwise identical to 1-thread results. Two constructs break
//! that shape and are flagged in library code:
//!
//! * **`thread::spawn`** — a detached thread escapes the fork/join scope:
//!   nothing guarantees it is joined before the kernel returns, and a
//!   panic in it is silently lost instead of propagated. Use
//!   `thread::scope` (as `par::join_all` does).
//! * **`Mutex` / `RwLock` / `Condvar`** — lock-based sharing means
//!   threads contend for one resource instead of owning disjoint slices;
//!   whoever wins the lock is scheduling-dependent, which is exactly the
//!   accumulation-order nondeterminism the layer forbids.
//!
//! `tt-comm` is exempt by allowlist: its rank threads are long-lived by
//! design and its collectives are built on locks and condvars — the
//! determinism story there is the collective algebra, not lock-freedom.

use super::{Diagnostic, Pass};
use crate::scanner::CodeModel;

/// Lock-based synchronization primitives (the flagged identifiers).
const LOCK_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// See the module docs.
pub struct ThreadDiscipline;

impl Pass for ThreadDiscipline {
    fn name(&self) -> &'static str {
        "thread_discipline"
    }

    fn description(&self) -> &'static str {
        "detached `thread::spawn` and lock types in numeric code (parallelism must be \
         scoped fork/join over disjoint output blocks — DESIGN.md §9)"
    }

    fn allowlist(&self) -> &'static [&'static str] {
        // tt-comm's rank threads and lock-built collectives are the point
        // of that crate; vendored shims mirror external crate APIs.
        &["crates/tt-comm", "vendor"]
    }

    fn run(&self, file: &str, model: &CodeModel, out: &mut Vec<Diagnostic>) {
        let toks = &model.tokens;
        for i in 0..toks.len() {
            if model.in_test[i] {
                continue;
            }
            let t = &toks[i];
            // Path call `thread::spawn(` (covers `std::thread::spawn` too).
            if t.is_ident("spawn")
                && i >= 2
                && toks[i - 1].is_punct("::")
                && toks[i - 2].is_ident("thread")
                && toks.get(i + 1).is_some_and(|u| u.is_punct("("))
            {
                out.push(Diagnostic {
                    pass: self.name(),
                    file: file.to_string(),
                    line: t.line,
                    message: "detached `thread::spawn` escapes the fork/join scope — joins are \
                              not guaranteed and panics are lost; use `thread::scope` (see \
                              `tt_linalg::par::join_all`), or suppress stating why this thread \
                              may outlive its caller"
                        .to_string(),
                });
                continue;
            }
            if LOCK_TYPES.iter().any(|l| t.is_ident(l)) {
                out.push(Diagnostic {
                    pass: self.name(),
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}` in numeric code: lock-based sharing makes scheduling observable — \
                         partition disjoint output blocks instead (bitwise determinism, \
                         DESIGN.md §9), or suppress stating why the protected state cannot \
                         affect numeric results",
                        t.text
                    ),
                });
            }
        }
    }
}
