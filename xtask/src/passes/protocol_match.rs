//! Pass `protocol_match`: the lint-time shadow of `VerifyComm`.
//!
//! The runtime fingerprinting layer aborts when two ranks disagree on the
//! next collective (kind or order). That catches divergence only on the
//! schedules tests happen to run; this pass proves it statically where it
//! can. For every rank-conditional branch point in every function skeleton
//! (see [`crate::skeleton`]), it computes the *collective sequence* each
//! arm emits — expanding helper calls interprocedurally when the call
//! resolves to a unique collective-issuing target, with the expansion
//! chain spelled out in the message — and flags branch points whose arms
//! provably emit different non-empty sequences.
//!
//! Scope discipline against double-reporting: an *empty* arm opposite a
//! collective-emitting one is already `rank_collective`'s finding (direct)
//! or `collective_order`'s (through a call), so this pass only fires when
//! at least two arms each reach a collective and their sequences differ —
//! the case neither of those passes can see. Arms whose sequence cannot be
//! proven (unknown-iteration loops over collectives, ambiguous call
//! resolution, early `return`) are conservatively skipped: like the
//! runtime it shadows, the pass reports only provable divergence.
//! Communicator backends (functions named after a collective or the p2p
//! primitives) legitimately branch on rank *inside* the protocol and are
//! exempt.

use super::{Diagnostic, GraphContext, GraphPass, COLLECTIVES};
use crate::skeleton::Skel;

/// See the module docs.
pub struct ProtocolMatch;

/// The collective sequence of one branch arm, when provable.
enum CollSeq {
    Known(Vec<String>),
    Unknown,
}

/// Recursion bound for interprocedural expansion (mirrors the witness
/// chain depth of the fact layer).
const MAX_DEPTH: usize = 6;

/// Computes the collective sequence `s` emits, expanding unique
/// collective-issuing call targets. `via` accumulates expanded callee
/// names for the message; `stack` guards cycles.
fn seq_of(
    cx: &GraphContext<'_>,
    ni: usize,
    s: &Skel,
    via: &mut Vec<String>,
    stack: &mut Vec<usize>,
) -> CollSeq {
    match s {
        Skel::Seq(xs) => {
            let mut out = Vec::new();
            for x in xs {
                match seq_of(cx, ni, x, via, stack) {
                    CollSeq::Known(mut ks) => out.append(&mut ks),
                    CollSeq::Unknown => return CollSeq::Unknown,
                }
            }
            CollSeq::Known(out)
        }
        Skel::Coll { kind, .. } => CollSeq::Known(vec![kind.clone()]),
        // A posted i-collective enters the rank's stream at the *post*
        // site — exactly where VerifyComm records its fingerprint (the
        // cross-rank check merely runs later, at the wait). p2p posts and
        // waits contribute nothing to the collective sequence.
        Skel::Post { kind, .. } if kind == "iallreduce_sum" => CollSeq::Known(vec![kind.clone()]),
        Skel::Post { .. } | Skel::Wait { .. } => CollSeq::Known(Vec::new()),
        Skel::Send { .. } | Skel::Recv { .. } => CollSeq::Known(Vec::new()),
        Skel::Let { .. } | Skel::Mut { .. } => CollSeq::Known(Vec::new()),
        // Control escapes make the suffix of the enclosing arm
        // incomparable: give up on this arm rather than guess.
        Skel::Brk | Skel::Cont | Skel::Ret => CollSeq::Unknown,
        Skel::Call { callee, line, .. } => {
            let mut targets: Vec<usize> = Vec::new();
            for edge in &cx.graph.edges[ni] {
                if edge.site.line != *line || edge.site.callee != *callee {
                    continue;
                }
                for &t in &edge.targets {
                    if cx.facts.collective[t].is_some() && !targets.contains(&t) {
                        targets.push(t);
                    }
                }
            }
            match targets.as_slice() {
                [] => CollSeq::Known(Vec::new()),
                [t] => {
                    let t = *t;
                    if stack.contains(&t) || stack.len() >= MAX_DEPTH {
                        return CollSeq::Unknown;
                    }
                    if !via.contains(callee) {
                        via.push(callee.clone());
                    }
                    stack.push(t);
                    let r = seq_of(cx, t, &cx.graph.summary(t).skeleton, via, stack);
                    stack.pop();
                    r
                }
                _ => CollSeq::Unknown,
            }
        }
        Skel::If { then, els, .. } => {
            // A nested branch contributes a provable sequence only when
            // both arms agree (rank-conditional nested branches are
            // checked at their own site by the walk).
            let a = seq_of(cx, ni, then, via, stack);
            let b = seq_of(cx, ni, els, via, stack);
            match (a, b) {
                (CollSeq::Known(x), CollSeq::Known(y)) if x == y => CollSeq::Known(x),
                _ => CollSeq::Unknown,
            }
        }
        Skel::Match { arms, .. } => {
            let mut first: Option<Vec<String>> = None;
            for a in arms {
                match seq_of(cx, ni, a, via, stack) {
                    CollSeq::Known(x) => match &first {
                        None => first = Some(x),
                        Some(f) if *f == x => {}
                        _ => return CollSeq::Unknown,
                    },
                    CollSeq::Unknown => return CollSeq::Unknown,
                }
            }
            CollSeq::Known(first.unwrap_or_default())
        }
        Skel::While { body, .. } | Skel::Loop { body, .. } | Skel::For { body, .. } => {
            // Unknown trip count: a collective inside is emitted some
            // unprovable number of times.
            match seq_of(cx, ni, body, via, stack) {
                CollSeq::Known(ks) if ks.is_empty() => CollSeq::Known(Vec::new()),
                _ => CollSeq::Unknown,
            }
        }
    }
}

fn fmt_seq(ks: &[String]) -> String {
    format!("[{}]", ks.join(", "))
}

/// Walks the skeleton of node `ni` reporting rank-conditional branch
/// points whose arms provably emit different non-empty collective
/// sequences.
fn walk(cx: &GraphContext<'_>, ni: usize, s: &Skel, out: &mut Vec<Diagnostic>) {
    let check_arms = |arms: &[(&str, &Skel)], line: usize, out: &mut Vec<Diagnostic>| {
        let mut known: Vec<(String, Vec<String>, Vec<String>)> = Vec::new();
        for (label, arm) in arms {
            let mut via = Vec::new();
            let mut stack = vec![ni];
            if let CollSeq::Known(ks) = seq_of(cx, ni, arm, &mut via, &mut stack) {
                if !ks.is_empty() {
                    known.push(((*label).to_string(), ks, via));
                }
            }
        }
        if known.len() < 2 {
            return;
        }
        if known.windows(2).all(|w| w[0].1 == w[1].1) {
            return;
        }
        let node = &cx.graph.nodes[ni];
        let detail = known
            .iter()
            .map(|(label, ks, via)| {
                if via.is_empty() {
                    format!("{label} emits {}", fmt_seq(ks))
                } else {
                    format!(
                        "{label} emits {} (via `{}`)",
                        fmt_seq(ks),
                        via.join("` → `")
                    )
                }
            })
            .collect::<Vec<_>>()
            .join("; ");
        out.push(Diagnostic {
            pass: "protocol_match",
            file: node.file.clone(),
            line,
            message: format!(
                "rank-conditional branches in `{}` emit different collective sequences: \
                 {detail} — every rank must execute the same collective protocol \
                 (VerifyComm aborts here at runtime; make the sequences identical or \
                 hoist the collectives out of the branch)",
                node.name
            ),
        });
    };
    match s {
        Skel::Seq(xs) => xs.iter().for_each(|x| walk(cx, ni, x, out)),
        Skel::If {
            rank_cond,
            then,
            els,
            line,
            ..
        } => {
            if *rank_cond {
                check_arms(
                    &[
                        ("the `if` arm", then.as_ref()),
                        ("the `else` arm", els.as_ref()),
                    ],
                    *line,
                    out,
                );
            }
            walk(cx, ni, then, out);
            walk(cx, ni, els, out);
        }
        Skel::Match {
            rank_cond,
            arms,
            line,
            ..
        } => {
            if *rank_cond {
                let labeled: Vec<(String, &Skel)> = arms
                    .iter()
                    .enumerate()
                    .map(|(k, a)| (format!("arm {k}"), a))
                    .collect();
                let refs: Vec<(&str, &Skel)> =
                    labeled.iter().map(|(l, a)| (l.as_str(), *a)).collect();
                check_arms(&refs, *line, out);
            }
            arms.iter().for_each(|a| walk(cx, ni, a, out));
        }
        Skel::While { body, .. } | Skel::Loop { body, .. } | Skel::For { body, .. } => {
            walk(cx, ni, body, out)
        }
        _ => {}
    }
}

impl GraphPass for ProtocolMatch {
    fn name(&self) -> &'static str {
        "protocol_match"
    }

    fn description(&self) -> &'static str {
        "rank-conditional branches whose arms provably emit different collective \
         sequences (path-sensitive, interprocedural VerifyComm shadow; DESIGN.md §13)"
    }

    fn run(&self, cx: &GraphContext<'_>, out: &mut Vec<Diagnostic>) {
        for ni in 0..cx.graph.nodes.len() {
            let name = cx.graph.nodes[ni].name.as_str();
            // Communicator backends: branching on rank inside the
            // implementation of a primitive IS the protocol.
            if COLLECTIVES.contains(&name) || name.contains("send") || name.contains("recv") {
                continue;
            }
            walk(cx, ni, &cx.graph.summary(ni).skeleton, out);
        }
    }
}
