//! Passes `float_cmp` and `narrow_cast`: numeric-discipline rules.
//!
//! Together these are the "float discipline" analysis: the bug classes that
//! corrupt a Gram-SVD rounding run *numerically* rather than structurally.
//!
//! * `float_cmp` flags `==`/`!=` where an operand is lexically
//!   floating-point (a float literal or an `f64` constant like `NAN`).
//!   Exact float equality is occasionally correct (skip-zero fast paths,
//!   breakdown detection) — those sites carry a justified suppression. The
//!   `crates/tt-linalg` kernels are allowlisted wholesale: LAPACK-style
//!   code compares against exact zero *semantically* (Householder `tau`,
//!   `beta == 0` dispatch in GEMM), and the conformance suite plus the
//!   `paranoid` runtime checks already gate that crate's numerics.
//! * `narrow_cast` flags `as` casts that silently drop information: any
//!   cast to a sub-64-bit integer (`usize as i32` truncates on every
//!   64-bit target), `f32` (halves the mantissa), and float-to-integer
//!   casts recognizable lexically (a float literal or a float-producing
//!   method chain like `.ceil()`/`.round()` feeding `as usize`), which
//!   truncate toward zero and saturate silently. `vendor/` is allowlisted:
//!   the shims mirror external crate APIs (e.g. `rand`'s `next_u64() >> 32
//!   as u32`) whose casts are deliberate bit manipulation.
//!
//! Both rules are lexical: a comparison of two float *variables* is
//! invisible to them (no type inference). The `paranoid` feature's runtime
//! finite-value checks are the backstop for what the heuristic cannot see.

use super::{Diagnostic, Pass};
use crate::scanner::{CodeModel, TokenKind};

/// Float-valued constant identifiers treated as float evidence.
const FLOAT_CONSTS: &[&str] = &["NAN", "INFINITY", "NEG_INFINITY", "EPSILON"];

/// Methods that (on this workspace's `f64`-only numerics) produce floats;
/// a call chain ending in one of these feeding `as <int>` is a
/// float-to-integer truncation.
const FLOAT_METHODS: &[&str] = &[
    "ceil",
    "floor",
    "round",
    "trunc",
    "sqrt",
    "cbrt",
    "ln",
    "log2",
    "log10",
    "exp",
    "exp2",
    "powf",
    "powi",
    "recip",
    "hypot",
    "to_radians",
    "to_degrees",
];

/// Integer targets narrower than the workspace's native 64-bit widths.
const NARROW_INT_TARGETS: &[&str] = &["i8", "i16", "i32", "u8", "u16", "u32"];

/// 64-bit-or-wider integer targets (flagged only for float sources).
const WIDE_INT_TARGETS: &[&str] = &["usize", "isize", "u64", "i64", "u128", "i128"];

/// See the module docs.
pub struct FloatCmp;

impl Pass for FloatCmp {
    fn name(&self) -> &'static str {
        "float_cmp"
    }

    fn description(&self) -> &'static str {
        "`==`/`!=` against floating-point literals or constants (use explicit tolerances)"
    }

    fn allowlist(&self) -> &'static [&'static str] {
        // LAPACK-style kernels compare against exact zero semantically;
        // vendored shims mirror external crate APIs.
        &["crates/tt-linalg", "vendor"]
    }

    fn run(&self, file: &str, model: &CodeModel, out: &mut Vec<Diagnostic>) {
        let toks = &model.tokens;
        for i in 0..toks.len() {
            if model.in_test[i] {
                continue;
            }
            let op = &toks[i];
            if !(op.is_punct("==") || op.is_punct("!=")) {
                continue;
            }
            let prev_is_float = i > 0 && is_float_evidence(model, i - 1);
            // Skip a unary minus on the right operand.
            let mut r = i + 1;
            if toks.get(r).is_some_and(|t| t.is_punct("-")) {
                r += 1;
            }
            let next_is_float = r < toks.len() && is_float_evidence(model, r);
            if prev_is_float || next_is_float {
                out.push(Diagnostic {
                    pass: self.name(),
                    file: file.to_string(),
                    line: op.line,
                    message: format!(
                        "floating-point `{}` comparison: prefer an explicit tolerance \
                         (`(a - b).abs() <= tol`) or suppress with the reason exact equality \
                         is semantically required",
                        op.text
                    ),
                });
            }
        }
    }
}

/// True if token `i` is lexically float-valued: a float literal or a float
/// constant ident (`f64::NAN`, ...).
fn is_float_evidence(model: &CodeModel, i: usize) -> bool {
    let t = &model.tokens[i];
    match t.kind {
        TokenKind::Num { float } => float,
        TokenKind::Ident => FLOAT_CONSTS.contains(&t.text.as_str()),
        _ => false,
    }
}

/// See the module docs.
pub struct NarrowCast;

impl Pass for NarrowCast {
    fn name(&self) -> &'static str {
        "narrow_cast"
    }

    fn description(&self) -> &'static str {
        "narrowing `as` casts: sub-64-bit integer targets, `f32`, and float-to-integer \
         truncations"
    }

    fn allowlist(&self) -> &'static [&'static str] {
        &["vendor"]
    }

    fn run(&self, file: &str, model: &CodeModel, out: &mut Vec<Diagnostic>) {
        let toks = &model.tokens;
        for i in 0..toks.len() {
            if model.in_test[i] || !toks[i].is_ident("as") {
                continue;
            }
            let Some(target) = toks.get(i + 1) else {
                continue;
            };
            if target.kind != TokenKind::Ident {
                continue;
            }
            let t = target.text.as_str();
            if NARROW_INT_TARGETS.contains(&t) {
                out.push(Diagnostic {
                    pass: self.name(),
                    file: file.to_string(),
                    line: toks[i].line,
                    message: format!(
                        "`as {t}` narrows on 64-bit targets and wraps silently: use `TryFrom` \
                         (with a structured error) or keep the wider type"
                    ),
                });
            } else if t == "f32" {
                out.push(Diagnostic {
                    pass: self.name(),
                    file: file.to_string(),
                    line: toks[i].line,
                    message: "`as f32` halves the mantissa: this workspace's numerics are f64 \
                              end-to-end — keep f64 or justify the precision loss"
                        .to_string(),
                });
            } else if WIDE_INT_TARGETS.contains(&t) && i > 0 && float_source(model, i - 1) {
                out.push(Diagnostic {
                    pass: self.name(),
                    file: file.to_string(),
                    line: toks[i].line,
                    message: format!(
                        "float-to-integer `as {t}` truncates toward zero and saturates \
                         silently: make the rounding explicit and convert checked, or \
                         restructure in integer arithmetic"
                    ),
                });
            }
        }
    }
}

/// True if the expression ending at token `i` is lexically float-valued: a
/// float literal, a float type name (cast chain `x as f64 as usize`), or a
/// `)` closing a call of a float-producing method (`(...).ceil() as usize`).
fn float_source(model: &CodeModel, i: usize) -> bool {
    let t = &model.tokens[i];
    match t.kind {
        TokenKind::Num { float } => float,
        TokenKind::Ident => t.text == "f64" || t.text == "f32",
        TokenKind::Punct if t.text == ")" => {
            // Walk back to the matching `(`; the ident before it is the
            // called method.
            let mut d = 0i64;
            let mut j = i;
            loop {
                let u = &model.tokens[j];
                if u.is_punct(")") {
                    d += 1;
                } else if u.is_punct("(") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            j > 0
                && model.tokens[j - 1].kind == TokenKind::Ident
                && FLOAT_METHODS.contains(&model.tokens[j - 1].text.as_str())
        }
        _ => false,
    }
}
