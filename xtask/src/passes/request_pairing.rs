//! Pass `request_pairing`: nonblocking posts whose `Request` is dropped.
//!
//! The nonblocking `Communicator` primitives (`iallreduce_sum`, `isend`,
//! `irecv`) return a `Request` handle that must be retired with `wait()`
//! (or probed with `test()`, or deliberately decoupled with `detach()`).
//! Dropping the handle loses the completion point: the debug-build drop
//! check panics at runtime, and in release the posted exchange silently
//! desynchronizes the rank's FIFO completion order from its peers. Three
//! lexical shapes reliably indicate the bug:
//!
//! 1. a post in statement position — `comm.iallreduce_sum(buf);` — drops
//!    the `Request` at the end of the statement, before any wait can run;
//! 2. a post chained into a non-retiring method — the only methods a
//!    `Request` offers are `wait`/`test`/`detach`, so any other chain can
//!    only be a mistake;
//! 3. a post bound to a variable that is never mentioned again in the
//!    function — no path can wait it.
//!
//! A bound handle that *is* mentioned again (waited, pushed into a vector
//! of in-flight requests, returned, passed on) is accepted without data-flow
//! analysis: the deferred-rendezvous model in `deadlock_check` and the
//! runtime drop check cover the residual cases. Functions whose own name
//! contains `send`/`recv`/`allreduce` (communicator backends and
//! decorators, which legitimately split post and wait across methods) are
//! exempt, mirroring `p2p_pairing`.

use super::{is_method_call, Diagnostic, Pass};
use crate::scanner::{CodeModel, TokenKind};

/// The nonblocking post methods (the `Request`-returning call surface).
const POSTS: &[&str] = &["iallreduce_sum", "isend", "irecv"];

/// Methods that legitimately consume a `Request`.
const CONSUMERS: &[&str] = &["wait", "test", "detach"];

/// See the module docs.
pub struct RequestPairing;

impl Pass for RequestPairing {
    fn name(&self) -> &'static str {
        "request_pairing"
    }

    fn description(&self) -> &'static str {
        "nonblocking post (iallreduce_sum/isend/irecv) whose Request is dropped in statement \
         position, chained into a non-retiring method, or bound but never waited/tested/detached"
    }

    fn run(&self, file: &str, model: &CodeModel, out: &mut Vec<Diagnostic>) {
        let toks = &model.tokens;
        for f in &model.fns {
            let Some((body_start, body_end)) = f.body else {
                continue;
            };
            if f.name.contains("send") || f.name.contains("recv") || f.name.contains("allreduce") {
                continue;
            }
            if model.in_test.get(f.fn_idx).copied().unwrap_or(false) {
                continue;
            }
            let body_end = body_end.min(toks.len() - 1);
            for i in body_start..=body_end {
                if model.in_test[i] {
                    continue;
                }
                if model.enclosing_fn(i).map(|g| g.fn_idx) != Some(f.fn_idx) {
                    continue;
                }
                let Some(&post) = POSTS.iter().find(|&&p| is_method_call(model, i, p)) else {
                    continue;
                };
                let close = model.matching_paren(i + 1);

                // Chained use: `comm.isend(p, b).wait()` retires inline;
                // any other chained method cannot.
                if toks.get(close + 1).is_some_and(|t| t.is_punct(".")) {
                    let chained = toks.get(close + 2);
                    if chained.is_some_and(|t| CONSUMERS.contains(&t.text.as_str())) {
                        continue;
                    }
                    out.push(Diagnostic {
                        pass: self.name(),
                        file: file.to_string(),
                        line: toks[i].line,
                        message: format!(
                            "fn `{}` chains the Request from `.{post}()` into `.{}()`, which does \
                             not retire it: finish the chain with `.wait()` (or `.detach()` if \
                             completion is handed elsewhere)",
                            f.name,
                            chained.map_or(String::new(), |t| t.text.clone()),
                        ),
                    });
                    continue;
                }

                // `let [mut] var = comm.i*(...)` binding: walk back over the
                // receiver chain (`a.b.iallreduce_sum`) to the `=`.
                let mut j = i - 1; // the `.` before the method name
                while j >= 2 && toks[j].is_punct(".") && toks[j - 1].kind == TokenKind::Ident {
                    j -= 2;
                }
                let binding = (j >= 2
                    && toks[j].is_punct("=")
                    && toks[j - 1].kind == TokenKind::Ident
                    && toks
                        .get(j - 2)
                        .is_some_and(|t| t.is_ident("let") || t.is_ident("mut")))
                .then(|| toks[j - 1].text.clone());

                if let Some(var) = binding {
                    // Any later mention of the variable in this fn counts as
                    // a use (wait, push into an in-flight set, return, ...).
                    let used_later = ((close + 1)..=body_end).any(|k| {
                        !model.in_test[k]
                            && model.enclosing_fn(k).map(|g| g.fn_idx) == Some(f.fn_idx)
                            && toks[k].is_ident(&var)
                    });
                    if !used_later {
                        out.push(Diagnostic {
                            pass: self.name(),
                            file: file.to_string(),
                            line: toks[i].line,
                            message: format!(
                                "fn `{}` binds the Request from `.{post}()` to `{var}` but never \
                                 uses it again: the post is never waited on any path — call \
                                 `{var}.wait()` where the result is consumed",
                                f.name
                            ),
                        });
                    }
                    continue;
                }

                // Statement position: the Request is dropped immediately.
                if toks.get(close + 1).is_some_and(|t| t.is_punct(";")) {
                    out.push(Diagnostic {
                        pass: self.name(),
                        file: file.to_string(),
                        line: toks[i].line,
                        message: format!(
                            "fn `{}` drops the Request from `.{post}()` at the end of the \
                             statement: the posted operation is never waited — bind the handle \
                             and `.wait()` it where the result is needed",
                            f.name
                        ),
                    });
                }
                // Anything else (`,`/`)`/...) feeds the Request into an
                // enclosing expression: accepted, see the module docs.
            }
        }
    }
}
