//! The `cargo xtask analyze` pass framework (DESIGN.md §8).
//!
//! Each pass is a lexical heuristic over the [`crate::scanner::CodeModel`]
//! of one source file. Passes never see test code: `tests/`, `benches/`,
//! and `examples/` trees are not collected, and `#[cfg(test)]` regions are
//! masked out by the model. False positives are expected and handled by the
//! suppression syntax (`// analyze::allow(<pass>): reason`, see
//! [`crate::analyze`]) — the reason string is mandatory, so every accepted
//! finding is documented at the call site.

use crate::callgraph::{CallGraph, Facts};
use crate::scanner::{CodeModel, TokenKind};

pub mod alloc_hot_path;
pub mod collective_order;
pub mod deadlock_check;
pub mod determinism;
pub mod float_discipline;
pub mod p2p_pairing;
pub mod panic_surface;
pub mod protocol_match;
pub mod rank_collective;
pub mod request_pairing;
pub mod thread_discipline;

/// One finding of one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The reporting pass's name (the key used in `analyze::allow(...)`).
    pub pass: &'static str,
    /// Repo-relative path of the file.
    pub file: String,
    /// 1-based line of the triggering token.
    pub line: usize,
    /// Human-readable description of the finding.
    pub message: String,
}

/// A static-analysis pass over one file.
pub trait Pass {
    /// Stable name, used in diagnostics and `analyze::allow(...)`.
    fn name(&self) -> &'static str;

    /// One-line description for `--list-passes` and docs.
    fn description(&self) -> &'static str;

    /// Repo-relative path prefixes this pass does not run on. Allowlists
    /// are part of a pass's *rule* (e.g. LAPACK-style kernels legitimately
    /// compare floats exactly), documented in DESIGN.md §8.
    fn allowlist(&self) -> &'static [&'static str] {
        &[]
    }

    /// Runs the pass over `model`, appending findings to `out`. `file` is
    /// the repo-relative path used in diagnostics.
    fn run(&self, file: &str, model: &CodeModel, out: &mut Vec<Diagnostic>);
}

/// The full registry, in reporting order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(rank_collective::RankCollective),
        Box::new(p2p_pairing::P2pPairing),
        Box::new(request_pairing::RequestPairing),
        Box::new(float_discipline::FloatCmp),
        Box::new(float_discipline::NarrowCast),
        Box::new(panic_surface::PanicSurface),
        Box::new(thread_discipline::ThreadDiscipline),
    ]
}

/// Everything an interprocedural pass sees: the workspace call graph, the
/// propagated transitive facts, and the hot-path reachability witness per
/// node (`Some(root_name)` when the node is in the forward closure of a
/// [`crate::callgraph::HOT_ROOT_PREFIXES`] entry point).
pub struct GraphContext<'a> {
    /// The workspace call graph (DESIGN.md §10).
    pub graph: &'a CallGraph,
    /// Transitive collective / nondeterminism / allocation facts.
    pub facts: &'a Facts,
    /// Per-node hot-path witness root, indexed like `graph.nodes`.
    pub hot: &'a [Option<String>],
}

/// An interprocedural pass over the whole workspace (DESIGN.md §10). Unlike
/// [`Pass`], a `GraphPass` runs once per analysis, after every file's
/// summary has been merged into the call graph; its diagnostics carry the
/// file they point into, and the driver applies the allowlist by filtering
/// on that path.
pub trait GraphPass {
    /// Stable name, used in diagnostics and `analyze::allow(...)`.
    fn name(&self) -> &'static str;

    /// One-line description for `--list-passes` and docs.
    fn description(&self) -> &'static str;

    /// Repo-relative path prefixes whose findings this pass drops (same
    /// contract as [`Pass::allowlist`], applied post hoc by the driver).
    fn allowlist(&self) -> &'static [&'static str] {
        &[]
    }

    /// Runs the pass over the whole graph, appending findings to `out`.
    fn run(&self, cx: &GraphContext<'_>, out: &mut Vec<Diagnostic>);
}

/// The interprocedural registry, in reporting order.
pub fn all_graph_passes() -> Vec<Box<dyn GraphPass>> {
    vec![
        Box::new(collective_order::CollectiveOrder),
        Box::new(protocol_match::ProtocolMatch),
        Box::new(deadlock_check::DeadlockCheck),
        Box::new(determinism::Determinism),
        Box::new(alloc_hot_path::AllocHotPath),
    ]
}

/// Every pass name — per-file and interprocedural — for suppression
/// validation and `--list-passes`.
pub fn all_pass_names() -> Vec<&'static str> {
    all_passes()
        .iter()
        .map(|p| p.name())
        .chain(all_graph_passes().iter().map(|p| p.name()))
        .collect()
}

/// The `Communicator` collective methods (the SPMD-critical call surface).
pub const COLLECTIVES: &[&str] = &[
    "allreduce_sum",
    "allreduce_max",
    "broadcast",
    "allgather",
    "barrier",
];

/// True for identifiers that lexically look rank-valued (`rank`, `vrank`,
/// `my_rank`, ...).
pub(crate) fn is_rank_ident(text: &str) -> bool {
    text == "rank" || text.ends_with("rank")
}

/// True if token `i` is a `.unwrap()` or `.expect(` method call (shared
/// with the `cargo xtask lint` unwrap lint, which predates the pass
/// framework and stays in the always-on gate).
pub(crate) fn is_unwrap_call(model: &CodeModel, i: usize) -> bool {
    is_method_call(model, i, "unwrap") || is_method_call(model, i, "expect")
}

/// True if token `i` is a method call `.name(`.
pub(crate) fn is_method_call(model: &CodeModel, i: usize, name: &str) -> bool {
    model.tokens[i].is_ident(name)
        && i > 0
        && model.tokens[i - 1].is_punct(".")
        && model.tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
}

/// Marks tokens lexically inside a conditional region whose branch selection
/// depends on a rank-valued identifier: the bodies of `if`/`while` whose
/// condition mentions a rank ident (including every chained `else` branch —
/// reaching the `else` is just as rank-dependent), and the body of a `match`
/// whose scrutinee mentions one.
pub(crate) fn rank_conditional_mask(model: &CodeModel) -> Vec<bool> {
    let toks = &model.tokens;
    let n = toks.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        let is_branch = t.is_ident("if") || t.is_ident("while") || t.is_ident("match");
        if !is_branch {
            i += 1;
            continue;
        }
        // Collect the condition / scrutinee up to the `{` opening the body.
        let mut j = i + 1;
        let mut pd = 0i64;
        let mut has_rank = false;
        let mut open = None;
        while j < n {
            let u = &toks[j];
            if u.is_punct("(") || u.is_punct("[") {
                pd += 1;
            } else if u.is_punct(")") || u.is_punct("]") {
                pd -= 1;
            } else if u.is_punct("{") && pd <= 0 {
                open = Some(j);
                break;
            } else if u.is_punct(";") && pd <= 0 {
                break;
            } else if u.kind == TokenKind::Ident && is_rank_ident(&u.text) {
                has_rank = true;
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        if !has_rank {
            i += 1;
            continue;
        }
        let mut end = model.matching_brace(open);
        for flag in mask.iter_mut().take(end + 1).skip(open) {
            *flag = true;
        }
        // Chained `else` / `else if` branches are equally rank-dependent
        // (`match` has no chaining).
        if !t.is_ident("match") {
            let mut k = end + 1;
            while k < n && toks[k].is_ident("else") {
                // Skip an optional `if <cond>` to the branch body.
                let mut m = k + 1;
                let mut pd2 = 0i64;
                let mut open2 = None;
                while m < n {
                    let u = &toks[m];
                    if u.is_punct("(") || u.is_punct("[") {
                        pd2 += 1;
                    } else if u.is_punct(")") || u.is_punct("]") {
                        pd2 -= 1;
                    } else if u.is_punct("{") && pd2 <= 0 {
                        open2 = Some(m);
                        break;
                    } else if u.is_punct(";") && pd2 <= 0 {
                        break;
                    }
                    m += 1;
                }
                let Some(open2) = open2 else { break };
                end = model.matching_brace(open2);
                for flag in mask.iter_mut().take(end + 1).skip(open2) {
                    *flag = true;
                }
                k = end + 1;
            }
        }
        i = open + 1;
    }
    mask
}
