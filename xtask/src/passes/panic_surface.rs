//! Pass `panic_surface`: panicking constructs in library code.
//!
//! A panic on one rank of an SPMD job is worse than a panic in serial code:
//! the other ranks keep running and block forever in the next collective,
//! turning a crash into a hang (the watchdog in `ThreadComm` exists for
//! exactly this). Library code should therefore return `Result` for
//! recoverable conditions and reserve panics for documented contract
//! violations — each of which carries a suppression explaining the
//! invariant.
//!
//! Flagged: `.unwrap()`, `.expect(...)`, `panic!`, `todo!`,
//! `unimplemented!`. Deliberately not flagged: `unreachable!` (an
//! explicitly-marked impossible branch) and `assert!`/`assert_eq!`/
//! `debug_assert!` (contract checks are the *point* of the paranoid
//! verification layer). Test code is always exempt.

use super::{is_unwrap_call, Diagnostic, Pass};
use crate::scanner::CodeModel;

/// Macros that abort the current rank.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// See the module docs.
pub struct PanicSurface;

impl Pass for PanicSurface {
    fn name(&self) -> &'static str {
        "panic_surface"
    }

    fn description(&self) -> &'static str {
        "`.unwrap()`/`.expect()` and `panic!`/`todo!`/`unimplemented!` in library code \
         (one rank panicking hangs the others)"
    }

    fn run(&self, file: &str, model: &CodeModel, out: &mut Vec<Diagnostic>) {
        let toks = &model.tokens;
        for i in 0..toks.len() {
            if model.in_test[i] {
                continue;
            }
            if is_unwrap_call(model, i) {
                out.push(Diagnostic {
                    pass: self.name(),
                    file: file.to_string(),
                    line: toks[i].line,
                    message: format!(
                        "`.{}()` in library code: return a `Result`, or suppress stating the \
                         invariant that makes failure impossible",
                        toks[i].text
                    ),
                });
                continue;
            }
            if PANIC_MACROS.iter().any(|m| toks[i].is_ident(m))
                && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            {
                out.push(Diagnostic {
                    pass: self.name(),
                    file: file.to_string(),
                    line: toks[i].line,
                    message: format!(
                        "`{}!` in library code: one rank panicking leaves the others blocked in \
                         the next collective — return an error, or suppress stating the contract \
                         this enforces",
                        toks[i].text
                    ),
                });
            }
        }
    }
}
