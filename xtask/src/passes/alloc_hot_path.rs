//! Pass `alloc_hot_path`: per-iteration heap allocation on sweep and
//! kernel hot paths.
//!
//! PR 5 introduced the `SweepScratch` buffer pool precisely because the
//! rounding sweeps used to allocate a fresh `Matrix` per core per
//! iteration, and the allocator showed up in every profile. This pass
//! keeps that work from regressing: inside any function reachable from a
//! hot-path entry point ([`crate::callgraph::HOT_ROOT_PREFIXES`]), it flags
//!
//! * a direct allocating construct inside a loop — `Vec::new`,
//!   `with_capacity`, `Box::new`, `String` constructors, `vec!`/`format!`,
//!   and the allocating method family `.to_vec()`/`.to_owned()`/
//!   `.to_string()`/`.collect()`/`.clone()`; and
//! * a call inside a loop to a function that *transitively allocates*
//!   (per the propagated facts, witness chain included) **when the
//!   evidence lives in the same file as the call site** — so refactoring a
//!   `vec!` out of the loop body into a local helper does not hide it.
//!   Cross-file calls whose callee allocates (`gemm`, `tsqr`, `transpose`,
//!   …) are the kernel API's documented result-allocation contract and are
//!   reviewed at the API level, not re-flagged at every call site; the
//!   fact still propagates through the graph and `--stats` counts it.
//!
//! The `SweepScratch` pool itself is the sanctioned escape hatch: calls to
//! its `take`/`recycle`/`recycle_core` surface neither fire nor propagate
//! the allocates fact ([`crate::callgraph::SANCTIONED_POOL_METHODS`]) —
//! the pool's internal warm-up allocation is its documented fallback, and
//! routing a hot loop through the pool is exactly the fix this pass asks
//! for. Vendored crates are exempt by allowlist.

use super::{Diagnostic, GraphContext, GraphPass};
use crate::callgraph::{ALLOC_FACT_EXEMPT_PREFIXES, SANCTIONED_POOL_METHODS};

/// See the module docs.
pub struct AllocHotPath;

impl GraphPass for AllocHotPath {
    fn name(&self) -> &'static str {
        "alloc_hot_path"
    }

    fn description(&self) -> &'static str {
        "per-iteration heap allocation (direct or via callees) in loops reachable from \
         sweep/kernel hot paths — use the SweepScratch pool (DESIGN.md §10)"
    }

    fn allowlist(&self) -> &'static [&'static str] {
        // The same trees that are exempt from the allocates *fact*: the
        // comm layer allocates per message by design, tooling/bench crates
        // are not numeric code, vendored shims mirror external APIs.
        ALLOC_FACT_EXEMPT_PREFIXES
    }

    fn run(&self, cx: &GraphContext<'_>, out: &mut Vec<Diagnostic>) {
        for (ni, node) in cx.graph.nodes.iter().enumerate() {
            let Some(root) = cx.hot[ni].as_ref() else {
                continue;
            };
            let summary = cx.graph.summary(ni);
            for (e, in_loop) in &summary.allocs {
                if !in_loop {
                    continue;
                }
                out.push(Diagnostic {
                    pass: self.name(),
                    file: node.file.clone(),
                    line: e.line,
                    message: format!(
                        "allocation {} inside a loop in `{}`, reachable from hot-path entry \
                         `{root}`: per-iteration heap traffic is what SweepScratch exists to \
                         remove — take a pooled buffer or hoist the allocation out of the loop",
                        e.what, node.name
                    ),
                });
            }
            for edge in &cx.graph.edges[ni] {
                let site = &edge.site;
                if !site.in_loop {
                    continue;
                }
                if site.is_method && SANCTIONED_POOL_METHODS.contains(&site.callee.as_str()) {
                    continue;
                }
                let Some(witness) = edge
                    .targets
                    .iter()
                    .filter_map(|&t| cx.facts.allocates[t].as_ref())
                    .find(|w| w.evidence_file == node.file)
                else {
                    continue;
                };
                // Same-file evidence only: the helper case this rule exists
                // for. A depth-0 witness can duplicate the callee's own
                // direct finding when the callee also loops; that is fine —
                // the two findings point at different lines and both are
                // real per-iteration costs.
                out.push(Diagnostic {
                    pass: self.name(),
                    file: node.file.clone(),
                    line: site.line,
                    message: format!(
                        "call to `{}` inside a loop in `{}` transitively allocates ({}), \
                         reachable from hot-path entry `{root}`: pass a pooled/preallocated \
                         buffer through or hoist the allocating work out of the loop",
                        site.callee, node.name, witness.chain
                    ),
                });
            }
        }
    }
}
