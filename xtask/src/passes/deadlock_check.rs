//! Pass `deadlock_check`: bounded SPMD model checking of `_dist` entry
//! points.
//!
//! The per-file `p2p_pairing` pass matches sends against recvs lexically
//! within one function; it cannot see a recv-recv cycle split across
//! files, a collective-count mismatch hidden behind a rank branch, or a
//! send whose matching recv simply does not exist anywhere. This pass
//! can: for every public `*_dist` entry point it generates the bounded
//! per-rank trace sets of the communication skeleton at p ∈ {2, 3, 4}
//! abstract ranks and exhaustively interleaves every compatible
//! combination under an eager-send / blocking-recv / rendezvous-collective
//! model (see [`crate::skeleton`] and DESIGN.md §13).
//!
//! Reporting is *angelic*: a finding is emitted only when the trace space
//! was explored without hitting any budget cap and **no** explored
//! execution completes cleanly — unknown branches, unbounded loops, and
//! ambiguous call targets all downgrade to silence, never to a report. The
//! p ≤ 4 bound is a soundness caveat, not a completeness one: a protocol
//! broken only at p ≥ 5 passes this gate (and is left to `VerifyComm` at
//! runtime), but everything this pass flags is a genuine divergence at a
//! rank count the workspace actually runs in tests.

use super::{Diagnostic, GraphContext, GraphPass};
use crate::skeleton::{check_entry, is_dist_entry, Verdict};

/// See the module docs.
pub struct DeadlockCheck;

impl GraphPass for DeadlockCheck {
    fn name(&self) -> &'static str {
        "deadlock_check"
    }

    fn description(&self) -> &'static str {
        "bounded exhaustive interleaving of each public `_dist` entry point's \
         communication skeleton at p in {2,3,4}: recv-before-send cycles, unmatched \
         p2p, collective-count mismatches (DESIGN.md §13)"
    }

    fn run(&self, cx: &GraphContext<'_>, out: &mut Vec<Diagnostic>) {
        for ni in 0..cx.graph.nodes.len() {
            let node = &cx.graph.nodes[ni];
            if !cx.graph.summary(ni).is_pub || !is_dist_entry(&node.name) {
                continue;
            }
            match check_entry(cx.graph, cx.facts, ni) {
                Verdict::Clean | Verdict::Inconclusive => {}
                Verdict::Deadlock { p, detail } => out.push(Diagnostic {
                    pass: self.name(),
                    file: node.file.clone(),
                    line: node.line,
                    message: format!(
                        "`{}` deadlocks at p = {p}: every explored interleaving blocks \
                         ({detail}) — a rank waits on a message or collective that never \
                         comes; reorder the sends/recvs or make the collective sequence \
                         rank-uniform",
                        node.name
                    ),
                }),
                Verdict::Unmatched { p, detail } => out.push(Diagnostic {
                    pass: self.name(),
                    file: node.file.clone(),
                    line: node.line,
                    message: format!(
                        "`{}` leaves unmatched point-to-point messages at p = {p}: every \
                         completing interleaving ends with undelivered sends ({detail}) — \
                         each send needs a matching recv on the destination rank",
                        node.name
                    ),
                }),
            }
        }
    }
}
