//! Pass `rank_collective`: collectives guarded by rank-dependent control
//! flow.
//!
//! Every distributed algorithm in this workspace is SPMD against
//! `tt_comm::Communicator`: all ranks must execute an *identical sequence*
//! of collectives. The fastest way to break that during a refactor is to
//! move an `allreduce`/`broadcast` into an `if rank == 0 { ... }` block (or
//! behind a rank-guarded early `return`) — every rank but one then skips
//! the collective, and the job deadlocks or silently corrupts data. The
//! runtime counterpart, `tt_comm::verify::VerifyComm`, catches this only on
//! schedules a test happens to execute; this pass flags the shape at lint
//! time, before any rank runs.
//!
//! Heuristic: a method call to one of the `Communicator` collectives that
//! lies lexically inside an `if`/`while`/`match` region whose condition
//! mentions a rank-valued identifier (or any chained `else` branch of one),
//! or that follows a rank-guarded `return` in the same function. Functions
//! named like the collectives themselves (communicator backends and
//! decorators implementing the operation) are exempt.

use super::{is_method_call, rank_conditional_mask, Diagnostic, Pass, COLLECTIVES};
use crate::scanner::CodeModel;

/// See the module docs.
pub struct RankCollective;

impl Pass for RankCollective {
    fn name(&self) -> &'static str {
        "rank_collective"
    }

    fn description(&self) -> &'static str {
        "collective calls inside rank-dependent conditionals or after rank-guarded early returns"
    }

    fn run(&self, file: &str, model: &CodeModel, out: &mut Vec<Diagnostic>) {
        let mask = rank_conditional_mask(model);
        // Rank-guarded regions containing a `return`, per enclosing fn:
        // (fn_idx token, region end token, return line).
        let mut guarded_returns: Vec<(usize, usize, usize)> = Vec::new();
        {
            let mut i = 0usize;
            while i < model.tokens.len() {
                if mask[i] && model.tokens[i].is_ident("return") && !model.in_test[i] {
                    if let Some(f) = model.enclosing_fn(i) {
                        // The region of interest ends where the mask next
                        // turns off.
                        let mut end = i;
                        while end + 1 < model.tokens.len() && mask[end + 1] {
                            end += 1;
                        }
                        guarded_returns.push((f.fn_idx, end, model.tokens[i].line));
                        i = end + 1;
                        continue;
                    }
                }
                i += 1;
            }
        }

        for (i, &rank_dependent) in mask.iter().enumerate() {
            if model.in_test[i] {
                continue;
            }
            let Some(name) = COLLECTIVES.iter().find(|c| is_method_call(model, i, c)) else {
                continue;
            };
            if let Some(f) = model.enclosing_fn(i) {
                // A communicator backend implementing `allreduce_sum` may
                // freely branch on rank inside it — that *is* the
                // collective, not a call site.
                if COLLECTIVES.contains(&f.name.as_str()) {
                    continue;
                }
            }
            let line = model.tokens[i].line;
            if rank_dependent {
                out.push(Diagnostic {
                    pass: self.name(),
                    file: file.to_string(),
                    line,
                    message: format!(
                        "collective `{name}` inside a rank-dependent conditional: every rank \
                         must execute an identical collective sequence (SPMD); hoist the call \
                         or make the condition rank-uniform"
                    ),
                });
                continue;
            }
            let encl = model.enclosing_fn(i).map(|f| f.fn_idx);
            if let Some((_, _, ret_line)) = guarded_returns
                .iter()
                .find(|(f, end, _)| Some(*f) == encl && *end < i)
            {
                out.push(Diagnostic {
                    pass: self.name(),
                    file: file.to_string(),
                    line,
                    message: format!(
                        "collective `{name}` is skipped by ranks taking the rank-guarded early \
                         return at line {ret_line}: the remaining ranks will block in it forever"
                    ),
                });
            }
        }
    }
}
