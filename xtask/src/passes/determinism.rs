//! Pass `determinism`: nondeterminism sources reachable from kernel and
//! rounding entry points.
//!
//! PR 5's parallel layer committed the numeric crates to a bitwise
//! determinism contract (DESIGN.md §9): for a fixed input and thread
//! count, every kernel and every rounding sweep produces bit-identical
//! results — the property the TT-serve caching direction (ROADMAP item 3)
//! and cross-rank reproducibility both rest on. The contract dies quietly:
//! a `HashMap` iteration feeding a reduction reorders the sum per process,
//! an `Instant::now` branch makes timing observable, an `env::var` read
//! makes results depend on the launch environment.
//!
//! This pass flags the *sources* — `HashMap`/`HashSet` (iteration order),
//! wall-clock reads, thread-identity queries, environment reads,
//! `available_parallelism`, unseeded RNG constructors — but only in
//! functions reachable from a hot-path entry point
//! ([`crate::callgraph::HOT_ROOT_PREFIXES`]: the `gemm`/`syrk`/QR/TSQR
//! kernel surface and the `round_*`/`gram_sweep*` rounding drivers), walking
//! the workspace call graph so helpers three calls down are still covered.
//! Code not reachable from those roots (CLI tooling, bench harnesses,
//! builders) may read clocks and environments freely.
//!
//! Vendored crates mirror external APIs and are exempt by allowlist; the
//! sanctioned uses inside the workspace (e.g. `tt_linalg::par` reading
//! `TT_NUM_THREADS` to pick a *partition*, which the output-block contract
//! makes value-neutral) carry in-source suppressions stating exactly that.

use super::{Diagnostic, GraphContext, GraphPass};

/// See the module docs.
pub struct Determinism;

impl GraphPass for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "nondeterminism sources (hash-order, clock, thread-id, env, unseeded RNG) reachable \
         from kernel/rounding entry points (bitwise contract, DESIGN.md §9/§10)"
    }

    fn allowlist(&self) -> &'static [&'static str] {
        // Vendored shims mirror external crate APIs (criterion reads
        // clocks; rand's whole point is entropy); tooling and bench
        // harnesses are not numeric code and may read clocks/environments
        // freely — they only enter the graph through ambiguous call edges.
        // The comm layer reads clocks for recv-timeout bookkeeping, which
        // affects scheduling but never the values a collective delivers;
        // its determinism story is the collective algebra checked by
        // `collective_order` and VerifyComm at runtime.
        &["vendor", "xtask", "crates/tt-bench", "crates/tt-comm"]
    }

    fn run(&self, cx: &GraphContext<'_>, out: &mut Vec<Diagnostic>) {
        for (ni, node) in cx.graph.nodes.iter().enumerate() {
            // Each function reports its own direct evidence; transitive
            // reports would re-flag one source once per caller.
            let Some(root) = cx.hot[ni].as_ref() else {
                continue;
            };
            // The runtime-autotune probe is the sanctioned configuration
            // surface: its one-shot sysfs/environment reads are memoized
            // into a process-lifetime constant, so reaching it from a hot
            // root does not break the per-run bitwise contract (see
            // [`crate::callgraph::SANCTIONED_TUNE_PREFIX`]).
            if crate::callgraph::is_tune_probe(&node.name) {
                continue;
            }
            let summary = cx.graph.summary(ni);
            for e in &summary.nondet {
                out.push(Diagnostic {
                    pass: self.name(),
                    file: node.file.clone(),
                    line: e.line,
                    message: format!(
                        "{} in `{}`, reachable from hot-path entry `{root}`: kernels and \
                         rounding sweeps must be bitwise deterministic for fixed input and \
                         thread count (DESIGN.md §9) — use a BTreeMap/sorted order, a seeded \
                         RNG, or move the dependence out of the hot path",
                        e.what, node.name
                    ),
                });
            }
        }
    }
}
