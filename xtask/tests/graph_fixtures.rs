//! Golden-diagnostic tests for the interprocedural graph passes
//! (`collective_order`, `determinism`, `alloc_hot_path`) over the
//! `fixtures/interproc/` corpus.
//!
//! Unlike the per-file fixtures, these are analyzed as one *directory* —
//! cross-file call resolution (helpers.rs) is part of what is under test —
//! and the fixture repo root is the corpus directory itself so relative
//! paths are bare filenames, outside every pass allowlist.

use std::path::{Path, PathBuf};

use xtask::analyze::{analyze_files, Report};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/interproc")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("interproc fixtures dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    files
}

/// One full-corpus run: every test slices this report per file.
fn run_corpus() -> Report {
    analyze_files(&corpus_dir(), &corpus_files()).expect("fixtures readable")
}

/// Parses a `.expected` golden file of `line:pass` rows (`#` comments and
/// blank lines ignored).
fn golden(fixture: &str) -> Vec<(usize, String)> {
    let path = corpus_dir().join(format!("{fixture}.expected"));
    std::fs::read_to_string(&path)
        .expect("golden file must be readable")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (line, pass) = l.split_once(':').expect("golden rows are line:pass");
            (
                line.trim().parse().expect("golden line number"),
                pass.trim().to_string(),
            )
        })
        .collect()
}

fn diags_for(report: &Report, fixture: &str) -> Vec<(usize, String)> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.file == fixture)
        .map(|d| (d.line, d.pass.to_string()))
        .collect()
}

#[test]
fn collective_order_fires_on_fixture() {
    let report = run_corpus();
    assert_eq!(
        diags_for(&report, "collective_order_fires.rs"),
        golden("collective_order_fires.rs")
    );
}

#[test]
fn determinism_fires_on_fixture() {
    let report = run_corpus();
    assert_eq!(
        diags_for(&report, "determinism_fires.rs"),
        golden("determinism_fires.rs")
    );
}

#[test]
fn tune_probe_reads_are_sanctioned() {
    let report = run_corpus();
    assert_eq!(
        diags_for(&report, "tune_probe_sanctioned.rs"),
        golden("tune_probe_sanctioned.rs")
    );
}

#[test]
fn alloc_hot_path_fires_on_fixture() {
    let report = run_corpus();
    assert_eq!(
        diags_for(&report, "alloc_hot_path_fires.rs"),
        golden("alloc_hot_path_fires.rs")
    );
}

#[test]
fn cross_file_witness_chain_is_spelled_out() {
    // The two-hop cross-file finding must carry the full chain so the
    // reader can audit the propagation without re-deriving it.
    let report = run_corpus();
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.file == "collective_order_fires.rs" && d.line == 24)
        .expect("cross-file finding present");
    assert!(d.message.contains("`deep_reduce`"), "{}", d.message);
    assert!(d.message.contains("`mid_reduce`"), "{}", d.message);
    assert!(d.message.contains("allreduce_sum"), "{}", d.message);
    assert!(d.message.contains("helpers.rs"), "{}", d.message);
}

#[test]
fn helpers_and_clean_fixtures_are_silent() {
    let report = run_corpus();
    assert_eq!(diags_for(&report, "helpers.rs"), vec![]);
    // clean.rs exercises the sanctioned pool surface (`take`/`recycle` in a
    // hot loop) and an unconditional collective through a helper.
    assert_eq!(diags_for(&report, "clean.rs"), vec![]);
}

#[test]
fn graph_pass_suppressions_are_consumed_and_unused_reported() {
    let report = run_corpus();
    assert_eq!(diags_for(&report, "suppressed.rs"), vec![]);
    assert_eq!(report.suppressed, 2, "both suppressed.rs annotations");
    assert_eq!(report.unused.len(), 1, "unused: {:?}", report.unused);
    assert!(report.unused[0].contains("unused.rs"));
    assert!(report.unused[0].contains("collective_order"));
    assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
}

#[test]
fn corpus_totals_are_stable() {
    let report = run_corpus();
    assert_eq!(report.files, corpus_files().len());
    let expected: usize = [
        "collective_order_fires.rs",
        "determinism_fires.rs",
        "alloc_hot_path_fires.rs",
        "tune_probe_sanctioned.rs",
    ]
    .iter()
    .map(|f| golden(f).len())
    .sum();
    assert_eq!(report.diagnostics.len(), expected);
    assert!(
        !report.is_clean(true),
        "corpus has findings by construction"
    );
}
