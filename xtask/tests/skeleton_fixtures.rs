//! Golden-diagnostic tests for the skeleton passes (`protocol_match`,
//! `deadlock_check`) over the `fixtures/skeleton/` corpus, plus the
//! `--fix-suppressions` removal logic on a scratch copy of the
//! unused-suppression fixture.
//!
//! Like the interproc corpus, the whole directory is analyzed at once —
//! the cross-file recv-recv cycle (deadlock_fires.rs + peers.rs) is part
//! of what is under test — with the corpus directory as the fixture repo
//! root so relative paths are bare filenames, outside every allowlist.

use std::path::{Path, PathBuf};

use xtask::analyze::{analyze_files, Report};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/skeleton")
}

fn corpus_files_in(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("skeleton fixtures dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    files
}

/// One full-corpus run: every test slices this report per file.
fn run_corpus() -> Report {
    analyze_files(&corpus_dir(), &corpus_files_in(&corpus_dir())).expect("fixtures readable")
}

/// Parses a `.expected` golden file of `line:pass` rows (`#` comments and
/// blank lines ignored).
fn golden(fixture: &str) -> Vec<(usize, String)> {
    let path = corpus_dir().join(format!("{fixture}.expected"));
    std::fs::read_to_string(&path)
        .expect("golden file must be readable")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (line, pass) = l.split_once(':').expect("golden rows are line:pass");
            (
                line.trim().parse().expect("golden line number"),
                pass.trim().to_string(),
            )
        })
        .collect()
}

fn diags_for(report: &Report, fixture: &str) -> Vec<(usize, String)> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.file == fixture)
        .map(|d| (d.line, d.pass.to_string()))
        .collect()
}

#[test]
fn deadlock_check_fires_on_cross_file_recv_cycle() {
    let report = run_corpus();
    assert_eq!(
        diags_for(&report, "deadlock_fires.rs"),
        golden("deadlock_fires.rs")
    );
    // The finding must say what blocks and at which p, so the reader can
    // replay the stuck schedule by hand.
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.file == "deadlock_fires.rs" && d.pass == "deadlock_check")
        .expect("deadlock finding present");
    assert!(d.message.contains("p = 2"), "{}", d.message);
    assert!(d.message.contains("blocked on recv"), "{}", d.message);
}

#[test]
fn protocol_match_fires_on_collective_count_mismatch() {
    let report = run_corpus();
    assert_eq!(
        diags_for(&report, "protocol_mismatch_fires.rs"),
        golden("protocol_mismatch_fires.rs")
    );
}

#[test]
fn protocol_match_witness_chain_is_spelled_out() {
    // The branch-mismatch finding must carry both arm sequences and the
    // helper chain each was collected through.
    let report = run_corpus();
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.file == "protocol_mismatch_fires.rs" && d.pass == "protocol_match")
        .expect("protocol_match finding present");
    assert!(d.message.contains("[barrier, broadcast]"), "{}", d.message);
    assert!(d.message.contains("[broadcast]"), "{}", d.message);
    assert!(d.message.contains("`sync_team`"), "{}", d.message);
    assert!(d.message.contains("`share_result`"), "{}", d.message);
}

#[test]
fn clean_tsqr_tree_and_peer_halves_are_silent() {
    let report = run_corpus();
    // The TSQR-shaped tree completes at every p in {2, 3, 4}; the peers.rs
    // halves carry documented p2p_pairing suppressions and nothing else.
    assert_eq!(diags_for(&report, "clean_tsqr.rs"), vec![]);
    assert_eq!(diags_for(&report, "peers.rs"), vec![]);
}

#[test]
fn clean_pipelined_post_wait_shapes_are_silent() {
    // Deferred rendezvous: the pipelined Gram chain and the preposted-irecv
    // ring (whose blocking twin is the deadlock_fires.rs finding) must pass
    // both the bounded interleaving and the request_pairing lexical check.
    let report = run_corpus();
    assert_eq!(diags_for(&report, "clean_pipelined.rs"), vec![]);
}

#[test]
fn skeleton_pass_suppressions_are_consumed_and_unused_reported() {
    let report = run_corpus();
    assert_eq!(diags_for(&report, "suppressed.rs"), vec![]);
    // suppressed.rs consumes 7 (2 deadlock_check, 1 protocol_match,
    // 1 collective_order, 2 rank_collective, 1 p2p_pairing) and peers.rs 2.
    assert_eq!(report.suppressed, 9, "unused: {:?}", report.unused);
    assert_eq!(report.unused.len(), 2, "unused: {:?}", report.unused);
    assert!(report.unused[0].contains("unused.rs"));
    assert!(report.unused[0].contains("deadlock_check"));
    assert!(report.unused[1].contains("protocol_match"));
    assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
}

#[test]
fn corpus_report_is_identical_across_worker_counts() {
    let dir = corpus_dir();
    let files = corpus_files_in(&dir);
    let serial = xtask::analyze::analyze_files_with(
        &dir,
        &files,
        &xtask::analyze::AnalysisOptions::serial_uncached(),
    )
    .expect("serial run");
    for jobs in [2usize, 4] {
        let opts = xtask::analyze::AnalysisOptions {
            jobs,
            cache_dir: None,
        };
        let par = xtask::analyze::analyze_files_with(&dir, &files, &opts).expect("parallel run");
        let flat = |r: &Report| {
            r.diagnostics
                .iter()
                .map(|d| (d.line, d.pass, d.file.clone(), d.message.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(flat(&serial.0), flat(&par.0), "jobs={jobs}");
        assert_eq!(serial.0.suppressed, par.0.suppressed);
        assert_eq!(serial.0.unused, par.0.unused);
    }
}

#[test]
fn fix_suppressions_dry_run_then_apply_removes_unused() {
    // Scratch copy of the unused-suppression fixture so the corpus itself
    // is never edited (and parallel test threads cannot collide).
    let scratch = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../target/analyze-props")
        .join("fix-suppressions");
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let original = std::fs::read_to_string(corpus_dir().join("unused.rs")).expect("fixture");
    let target = scratch.join("unused.rs");
    std::fs::write(&target, &original).expect("copy fixture");

    let files = vec![target.clone()];
    let before = analyze_files(&scratch, &files).expect("pre-fix run");
    assert!(before.diagnostics.is_empty());
    assert_eq!(before.unused_sites.len(), 2, "{:?}", before.unused);

    // Dry run: reports both sites, touches nothing.
    let planned = xtask::analyze::apply_suppression_fixes(&scratch, &before.unused_sites, false)
        .expect("dry run");
    assert_eq!(planned.len(), 2);
    assert_eq!(
        std::fs::read_to_string(&target).expect("re-read"),
        original,
        "dry run must not edit the file"
    );

    // Apply: the standalone comment line disappears, the trailing comment
    // is stripped back to bare code, and a re-run reports nothing unused.
    let fixed = xtask::analyze::apply_suppression_fixes(&scratch, &before.unused_sites, true)
        .expect("apply");
    assert_eq!(fixed.len(), 2);
    let after_src = std::fs::read_to_string(&target).expect("re-read");
    assert!(!after_src.contains("analyze::allow"), "{after_src}");
    assert!(
        after_src.contains("    let y = comm.allreduce_sum(x);\n"),
        "trailing comment must strip to bare code: {after_src}"
    );
    let after = analyze_files(&scratch, &files).expect("post-fix run");
    assert!(after.unused.is_empty(), "{:?}", after.unused);
    assert!(after.diagnostics.is_empty());
    assert!(after.errors.is_empty());
}
