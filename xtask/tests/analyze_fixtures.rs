//! Golden-diagnostic tests for `cargo xtask analyze`: each pass fires on
//! its fixture exactly as recorded in the matching `.expected` file, stays
//! silent on the clean fixture, and the suppression machinery (trailing,
//! standalone, unused, malformed) behaves as documented.

use std::path::{Path, PathBuf};

use xtask::analyze::{analyze_files, Report};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run(fixture: &str) -> Report {
    let dir = fixtures_dir();
    analyze_files(&dir, &[dir.join(fixture)]).expect("fixture must be readable")
}

/// Parses a `.expected` golden file of `line:pass` rows (`#` comments and
/// blank lines ignored).
fn golden(fixture: &str) -> Vec<(usize, String)> {
    let path = fixtures_dir().join(format!("{fixture}.expected"));
    std::fs::read_to_string(&path)
        .expect("golden file must be readable")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (line, pass) = l.split_once(':').expect("golden rows are line:pass");
            (
                line.trim().parse().expect("golden line number"),
                pass.trim().to_string(),
            )
        })
        .collect()
}

fn assert_matches_golden(fixture: &str) {
    let report = run(fixture);
    assert!(
        report.errors.is_empty(),
        "unexpected suppression errors in {fixture}: {:?}",
        report.errors
    );
    let got: Vec<(usize, String)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.pass.to_string()))
        .collect();
    assert_eq!(got, golden(fixture), "diagnostics for {fixture}");
}

#[test]
fn rank_collective_fires_on_fixture() {
    assert_matches_golden("rank_collective_fires.rs");
}

#[test]
fn p2p_pairing_fires_on_fixture() {
    assert_matches_golden("p2p_pairing_fires.rs");
}

#[test]
fn request_pairing_fires_on_fixture() {
    assert_matches_golden("request_pairing_fires.rs");
}

#[test]
fn float_cmp_fires_on_fixture() {
    assert_matches_golden("float_cmp_fires.rs");
}

#[test]
fn narrow_cast_fires_on_fixture() {
    assert_matches_golden("narrow_cast_fires.rs");
}

#[test]
fn panic_surface_fires_on_fixture() {
    assert_matches_golden("panic_surface_fires.rs");
}

#[test]
fn thread_discipline_fires_on_fixture() {
    // The golden file covers both detached-spawn forms and all three lock
    // types; the fixture also pins the silent cases (scoped fork/join and
    // `.spawn()` on a non-`thread` receiver).
    let report = run("thread_discipline_fires.rs");
    assert!(
        report.errors.is_empty(),
        "unexpected suppression errors: {:?}",
        report.errors
    );
    let got: Vec<(usize, String)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.pass.to_string()))
        .collect();
    assert_eq!(got, golden("thread_discipline_fires.rs"));
    // The documented logger-thread suppression must be consumed, not spare.
    assert_eq!(report.suppressed, 1);
    assert!(report.unused.is_empty());
}

#[test]
fn clean_fixture_is_silent() {
    let report = run("clean.rs");
    assert!(
        report.diagnostics.is_empty(),
        "clean fixture produced: {:?}",
        report.diagnostics
    );
    assert!(report.errors.is_empty());
    assert!(report.unused.is_empty());
    assert_eq!(report.suppressed, 0);
    assert!(report.is_clean(true));
}

#[test]
fn suppressions_silence_findings() {
    let report = run("suppressed.rs");
    assert!(
        report.diagnostics.is_empty(),
        "suppressed fixture still reports: {:?}",
        report.diagnostics
    );
    assert_eq!(report.suppressed, 2, "both annotations must be consumed");
    assert!(report.unused.is_empty());
    assert!(report.is_clean(true));
}

#[test]
fn unused_suppression_is_reported() {
    let report = run("unused_suppression.rs");
    assert!(report.diagnostics.is_empty());
    assert_eq!(report.unused.len(), 1, "unused: {:?}", report.unused);
    assert!(report.unused[0].contains("float_cmp"));
    // Unused suppressions fail the default gate but pass with checking off.
    assert!(!report.is_clean(true));
    assert!(report.is_clean(false));
}

#[test]
fn malformed_suppressions_are_errors() {
    let report = run("malformed_suppression.rs");
    assert_eq!(report.errors.len(), 2, "errors: {:?}", report.errors);
    assert!(report.errors[0].contains("malformed"));
    assert!(report.errors[1].contains("unknown pass"));
    assert!(
        !report.is_clean(false),
        "errors fail the gate unconditionally"
    );
}

#[test]
fn whole_fixture_directory_aggregates() {
    // Run everything at once: per-file results must be independent.
    let dir = fixtures_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    let report = analyze_files(&dir, &files).expect("fixtures readable");
    let expected_diags: usize = [
        "rank_collective_fires.rs",
        "p2p_pairing_fires.rs",
        "request_pairing_fires.rs",
        "float_cmp_fires.rs",
        "narrow_cast_fires.rs",
        "panic_surface_fires.rs",
        "thread_discipline_fires.rs",
    ]
    .iter()
    .map(|f| golden(f).len())
    .sum();
    assert_eq!(report.diagnostics.len(), expected_diags);
    // Two in suppressed.rs plus the logger-thread one in the
    // thread_discipline fixture.
    assert_eq!(report.suppressed, 3);
    assert_eq!(report.unused.len(), 1);
    assert_eq!(report.errors.len(), 2);
    assert_eq!(report.files, files.len());
}
