//! Property tests: the scanner and every pass must be total — no panic and
//! no unbounded loop — on arbitrary input, because `cargo xtask analyze`
//! runs over whatever source text the repo contains, including files that
//! do not parse.

use proptest::prelude::*;
use xtask::passes::all_passes;
use xtask::scanner::CodeModel;

/// Syntax fragments whose concatenations hit the scanner's hard cases:
/// unterminated strings and comments, stray quotes and hashes, lifetimes
/// next to char literals, dangling attributes, unbalanced braces.
const FRAGMENTS: &[&str] = &[
    "fn f",
    "fn",
    "{",
    "}",
    "(",
    ")",
    "#[cfg(test)]",
    "#[cfg(test)",
    "mod t",
    "r#\"",
    "\"#",
    "r\"",
    "\"",
    "'",
    "'a",
    "'a'",
    "b\"x\"",
    "br#\"y\"#",
    "c\"z\"",
    "/*",
    "*/",
    "//",
    "///!",
    "if rank == 0",
    "while my_rank != 1",
    "else",
    "match x",
    ".recv(",
    ".send(",
    ".unwrap()",
    ".expect(",
    "panic!",
    "todo!",
    "return",
    "0.5",
    "1e",
    "1e3",
    "2f64",
    "0..5",
    "==",
    "!=",
    "::",
    "=>",
    "as u32",
    "as f32",
    "as usize",
    "let x =",
    ";",
    "#",
    "\\",
    "r#fn",
    "analyze::allow(float_cmp): soup",
    "// analyze::allow(panic_surface): soup",
    "// analyze::allow(bogus)",
    "\u{7f}",
    "é",
    "𝕊",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scanner_is_total_on_byte_soup(bytes in proptest::collection::vec(0u8..=255u8, 0usize..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let model = CodeModel::build(&src);
        // Structural invariants hold whatever the input was.
        prop_assert_eq!(model.tokens.len(), model.depth.len());
        prop_assert_eq!(model.tokens.len(), model.in_test.len());
        for f in &model.fns {
            if let Some((open, close)) = f.body {
                prop_assert!(open < close);
                prop_assert!(close < model.tokens.len());
            }
        }
    }

    #[test]
    fn scanner_and_passes_are_total_on_fragment_soup(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0usize..64),
    ) {
        let src = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ");
        let model = CodeModel::build(&src);
        prop_assert_eq!(model.tokens.len(), model.in_test.len());
        // Every pass must also survive the malformed token stream.
        let mut out = Vec::new();
        for pass in all_passes() {
            pass.run("soup.rs", &model, &mut out);
        }
        for d in &out {
            prop_assert!(d.line >= 1);
        }
    }

    #[test]
    fn line_numbers_are_monotone_and_in_range(
        bytes in proptest::collection::vec(0u8..=255u8, 0usize..256),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let model = CodeModel::build(&src);
        let max_line = src.lines().count().max(1);
        let mut prev = 1usize;
        for t in &model.tokens {
            prop_assert!(t.line >= prev, "token lines must be non-decreasing");
            prop_assert!(t.line <= max_line, "token line past end of input");
            prev = t.line;
        }
    }
}
