//! Property tests: the scanner and every pass must be total — no panic and
//! no unbounded loop — on arbitrary input, because `cargo xtask analyze`
//! runs over whatever source text the repo contains, including files that
//! do not parse.

use proptest::prelude::*;
use xtask::analyze::{analyze_files_with, AnalysisOptions};
use xtask::callgraph::FileSummary;
use xtask::passes::all_passes;
use xtask::scanner::CodeModel;

/// Syntax fragments whose concatenations hit the scanner's hard cases:
/// unterminated strings and comments, stray quotes and hashes, lifetimes
/// next to char literals, dangling attributes, unbalanced braces.
const FRAGMENTS: &[&str] = &[
    "fn f",
    "fn",
    "{",
    "}",
    "(",
    ")",
    "#[cfg(test)]",
    "#[cfg(test)",
    "mod t",
    "r#\"",
    "\"#",
    "r\"",
    "\"",
    "'",
    "'a",
    "'a'",
    "b\"x\"",
    "br#\"y\"#",
    "c\"z\"",
    "/*",
    "*/",
    "//",
    "///!",
    "if rank == 0",
    "while my_rank != 1",
    "else",
    "match x",
    ".recv(",
    ".send(",
    ".unwrap()",
    ".expect(",
    "panic!",
    "todo!",
    "return",
    "0.5",
    "1e",
    "1e3",
    "2f64",
    "0..5",
    "==",
    "!=",
    "::",
    "=>",
    "as u32",
    "as f32",
    "as usize",
    "let x =",
    ";",
    "#",
    "\\",
    "r#fn",
    "analyze::allow(float_cmp): soup",
    "// analyze::allow(panic_surface): soup",
    "// analyze::allow(bogus)",
    "\u{7f}",
    "é",
    "𝕊",
    // Call-site / summary-extraction shapes for the interprocedural layer.
    "use a::b::{c, d as e};",
    "use crate::round::*;",
    "comm.allreduce_sum(",
    "deep_reduce(comm, x)",
    "for i in 0..n {",
    "loop {",
    "Vec::new()",
    "Vec::with_capacity(",
    "vec![0.0; 4]",
    ".collect::<Vec<_>>()",
    ".to_vec()",
    "HashMap::new()",
    "Instant::now()",
    "std::env::var(",
    "pool.take(",
    "if rank == 0 { return; }",
    // Skeleton-extraction shapes: peer/tag expressions, loop structure,
    // and the p2p/collective ops the comm interpreter models.
    "comm.rank()",
    "comm.size()",
    "comm.send(rank + 1, buf)",
    "comm.recv((rank + p - 1) % p)",
    "comm.barrier()",
    "comm.broadcast(0, y)",
    "mask <<= 1",
    "rank ^ 1",
    "rank & mask != 0",
    "for (i, c) in cores.iter().enumerate() {",
    "while mask < p {",
    "break",
    "continue",
    "%",
    "<<",
    "let mut sent = 0;",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scanner_is_total_on_byte_soup(bytes in proptest::collection::vec(0u8..=255u8, 0usize..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let model = CodeModel::build(&src);
        // Structural invariants hold whatever the input was.
        prop_assert_eq!(model.tokens.len(), model.depth.len());
        prop_assert_eq!(model.tokens.len(), model.in_test.len());
        for f in &model.fns {
            if let Some((open, close)) = f.body {
                prop_assert!(open < close);
                prop_assert!(close < model.tokens.len());
            }
        }
    }

    #[test]
    fn scanner_and_passes_are_total_on_fragment_soup(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0usize..64),
    ) {
        let src = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ");
        let model = CodeModel::build(&src);
        prop_assert_eq!(model.tokens.len(), model.in_test.len());
        // Every pass must also survive the malformed token stream.
        let mut out = Vec::new();
        for pass in all_passes() {
            pass.run("soup.rs", &model, &mut out);
        }
        for d in &out {
            prop_assert!(d.line >= 1);
        }
    }

    #[test]
    fn summary_extraction_is_total_on_byte_soup(
        bytes in proptest::collection::vec(0u8..=255u8, 0usize..512),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        let model = CodeModel::build(&src);
        let summary = FileSummary::extract("soup.rs", &model);
        // Every recorded call site carries a line inside the input, and a
        // second extraction is bit-identical (no hidden state).
        let max_line = src.lines().count().max(1);
        for f in &summary.fns {
            for c in &f.calls {
                prop_assert!(c.line >= 1 && c.line <= max_line);
                prop_assert!(!c.callee.is_empty());
            }
        }
        prop_assert_eq!(summary.clone(), FileSummary::extract("soup.rs", &model));
    }

    #[test]
    fn summary_extraction_is_total_on_fragment_soup(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0usize..64),
    ) {
        let src = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ");
        let model = CodeModel::build(&src);
        let summary = FileSummary::extract("soup.rs", &model);
        prop_assert_eq!(summary.clone(), FileSummary::extract("soup.rs", &model));
    }

    #[test]
    fn skeleton_extraction_is_total_on_byte_soup(
        bytes in proptest::collection::vec(0u8..=255u8, 0usize..512),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        let model = CodeModel::build(&src);
        // Extraction must be total on arbitrary token streams, and the
        // wire encoding must round-trip every skeleton it produces (the
        // cache depends on this: a non-identity round-trip would make warm
        // runs diverge from cold ones).
        for f in &model.fns {
            if let Some((open, close)) = f.body {
                let skel = xtask::skeleton::extract_fn(&model, open, close);
                let wire = xtask::skeleton::to_wire(&skel);
                prop_assert!(!wire.contains('\n'), "wire format is single-line");
                prop_assert_eq!(xtask::skeleton::from_wire(&wire), Some(skel));
            }
        }
    }

    #[test]
    fn skeleton_extraction_is_total_on_fragment_soup(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0usize..64),
    ) {
        let src = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ");
        let model = CodeModel::build(&src);
        for f in &model.fns {
            if let Some((open, close)) = f.body {
                let skel = xtask::skeleton::extract_fn(&model, open, close);
                // Deterministic (no hidden state) and wire-stable.
                prop_assert_eq!(&skel, &xtask::skeleton::extract_fn(&model, open, close));
                let wire = xtask::skeleton::to_wire(&skel);
                prop_assert_eq!(xtask::skeleton::from_wire(&wire), Some(skel));
            }
        }
    }

    #[test]
    fn wire_parse_is_total_on_byte_soup(
        bytes in proptest::collection::vec(0u8..=255u8, 0usize..256),
    ) {
        // The cache feeds `from_wire` whatever is on disk: it must never
        // panic, only decode or miss.
        let text = String::from_utf8_lossy(&bytes);
        let _ = xtask::skeleton::from_wire(&text);
    }

    #[test]
    fn line_numbers_are_monotone_and_in_range(
        bytes in proptest::collection::vec(0u8..=255u8, 0usize..256),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let model = CodeModel::build(&src);
        let max_line = src.lines().count().max(1);
        let mut prev = 1usize;
        for t in &model.tokens {
            prop_assert!(t.line >= prev, "token lines must be non-decreasing");
            prop_assert!(t.line <= max_line, "token line past end of input");
            prev = t.line;
        }
    }
}

/// Writes one fragment-soup corpus under `target/` (inside the repo) and
/// returns `(repo_dir, files)`. Each test uses its own subdirectory so
/// parallel test threads never collide.
fn write_corpus(
    subdir: &str,
    file_picks: &[Vec<usize>],
) -> (std::path::PathBuf, Vec<std::path::PathBuf>) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../target/analyze-props")
        .join(subdir);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    let mut files = Vec::new();
    for (i, picks) in file_picks.iter().enumerate() {
        let src = picks
            .iter()
            .map(|&p| FRAGMENTS[p % FRAGMENTS.len()])
            .collect::<Vec<_>>()
            .join("\n");
        let path = dir.join(format!("soup{i}.rs"));
        std::fs::write(&path, src).expect("write corpus file");
        files.push(path);
    }
    (dir, files)
}

/// `(line, pass, file, message)` projection for report equality.
fn flat(report: &xtask::analyze::Report) -> Vec<(usize, String, String, String)> {
    report
        .diagnostics
        .iter()
        .map(|d| {
            (
                d.line,
                d.pass.to_string(),
                d.file.clone(),
                d.message.clone(),
            )
        })
        .collect()
}

proptest! {
    // End-to-end properties run the whole pipeline with file IO: keep the
    // case count low — each case is a full multi-file analysis.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn report_is_independent_of_worker_count(
        file_picks in proptest::collection::vec(
            proptest::collection::vec(0usize..FRAGMENTS.len(), 0usize..48),
            1usize..6,
        ),
    ) {
        let (dir, files) = write_corpus("jobs", &file_picks);
        let serial = analyze_files_with(&dir, &files, &AnalysisOptions::serial_uncached())
            .expect("serial run");
        for jobs in [2usize, 4, 7] {
            let opts = AnalysisOptions { jobs, cache_dir: None };
            let par = analyze_files_with(&dir, &files, &opts).expect("parallel run");
            prop_assert_eq!(flat(&serial.0), flat(&par.0), "jobs={}", jobs);
            prop_assert_eq!(serial.0.suppressed, par.0.suppressed);
            prop_assert_eq!(&serial.0.errors, &par.0.errors);
            prop_assert_eq!(&serial.0.unused, &par.0.unused);
            prop_assert_eq!(serial.1.graph_nodes, par.1.graph_nodes);
            prop_assert_eq!(serial.1.graph_edges, par.1.graph_edges);
        }
    }

    #[test]
    fn cached_rerun_reproduces_the_uncached_report(
        file_picks in proptest::collection::vec(
            proptest::collection::vec(0usize..FRAGMENTS.len(), 0usize..48),
            1usize..5,
        ),
    ) {
        let (dir, files) = write_corpus("cache", &file_picks);
        let uncached = analyze_files_with(&dir, &files, &AnalysisOptions::serial_uncached())
            .expect("uncached run");
        let cache_dir = dir.join("cache");
        let opts = AnalysisOptions { jobs: 1, cache_dir: Some(cache_dir) };
        let cold = analyze_files_with(&dir, &files, &opts).expect("cold run");
        let warm = analyze_files_with(&dir, &files, &opts).expect("warm run");
        prop_assert_eq!(cold.1.cache_hits, 0, "cold run must miss everywhere");
        prop_assert_eq!(warm.1.cache_hits, files.len(), "warm run must hit everywhere");
        prop_assert_eq!(flat(&uncached.0), flat(&cold.0));
        prop_assert_eq!(flat(&uncached.0), flat(&warm.0));
        prop_assert_eq!(uncached.0.suppressed, warm.0.suppressed);
        prop_assert_eq!(&uncached.0.errors, &warm.0.errors);
        prop_assert_eq!(&uncached.0.unused, &warm.0.unused);
    }
}
