//! Fixture: `panic_surface` fires on panicking constructs.

fn boom(x: Option<u32>) -> u32 {
    if x.is_none() {
        panic!("no value");
    }
    x.unwrap()
}

fn widen(y: Result<u32, E>) -> u32 {
    y.expect("must")
}

fn later() {
    todo!()
}
