//! Fixture: `request_pairing` fires on nonblocking posts whose `Request`
//! handle is dropped or never retired.

fn post_and_forget(comm: &C) {
    comm.iallreduce_sum(buf);
    comm.barrier();
}

fn bound_but_never_waited(comm: &C) {
    let req = comm.irecv(1);
    comm.allreduce_sum(x);
}

fn chained_into_wrong_method(comm: &C) -> usize {
    comm.isend(1, buf).len()
}

fn well_paired(comm: &C, reqs: &mut Vec<R>) {
    let req = comm.iallreduce_sum(buf);
    let out = req.wait();
    comm.isend(0, out).wait();
    reqs.push(comm.irecv(0));
    comm.iallreduce_sum(buf).detach();
}
