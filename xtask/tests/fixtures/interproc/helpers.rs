//! Cross-file helpers for the interprocedural fixtures: facts extracted
//! here must propagate to call sites in the sibling fixture files.

/// Two hops above the collective: callers acquire the fact transitively.
pub fn deep_reduce(comm: &Communicator, x: f64) -> f64 {
    mid_reduce(comm, x)
}

fn mid_reduce(comm: &Communicator, x: f64) -> f64 {
    comm.allreduce_sum(x)
}

/// Allocates, but lives in a *different file* than its hot-loop callers:
/// `alloc_hot_path` must NOT flag cross-file calls to it (the allocation is
/// this function's documented contract).
pub fn fresh_buf(n: usize) -> Vec<f64> {
    let mut buf = Vec::with_capacity(n);
    buf.resize(n, 0.0);
    buf
}
