//! Suppression fixture for the graph passes: each finding below is real
//! (it fires without the annotation) and each annotation must be consumed.

pub fn round_suppressed(n: usize) -> f64 {
    let mut acc = 0.0;
    for _ in 0..n {
        // analyze::allow(alloc_hot_path): fixture — documented per-iteration
        // scratch, sized by data that only exists inside the loop.
        let v = vec![0.0; 2];
        acc += v[0];
    }
    // analyze::allow(determinism): fixture — wall-clock read feeds a report
    // string, never a numeric result.
    let t = std::time::Instant::now();
    acc + t.elapsed().as_secs_f64()
}
