//! `collective_order` positives: calls to transitively-collective helpers
//! from rank-divergent control flow. The per-file `rank_collective` pass is
//! blind to all of these — no collective *name* appears near the `rank`
//! tests — which is exactly why the interprocedural pass exists.

/// Same-file helper: both the guarded call and the call in the
/// rank-guarded-return shadow must fire.
pub fn round_guarded(comm: &Communicator, rank: usize, x: f64) -> f64 {
    if rank == 0 {
        return helper_reduce(comm, x);
    }
    helper_reduce(comm, x)
}

fn helper_reduce(comm: &Communicator, x: f64) -> f64 {
    comm.allreduce_sum(x)
}

/// Cross-file, two hops deep: the witness chain walks through
/// `helpers.rs::deep_reduce` → `mid_reduce` → the collective itself.
pub fn gram_sweep_guarded(comm: &Communicator, rank: usize, x: f64) -> f64 {
    let mut acc = 0.0;
    if rank != 0 {
        acc += deep_reduce(comm, x);
    }
    acc
}
