//! Unused-suppression fixture: the annotation names a real graph pass but
//! matches no diagnostic, so `--check-suppressions` (the default) must
//! report it.

pub fn quiet(x: f64) -> f64 {
    // analyze::allow(collective_order): fixture — nothing fires here.
    x + 1.0
}
