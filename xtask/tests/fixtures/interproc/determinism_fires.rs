//! `determinism` positives and the reachability negative: nondeterminism
//! sources fire only inside functions reachable from a hot-path entry
//! point, and each source is reported once, at its own line.

/// Hot root (`round_` prefix); the source lives one call down.
pub fn round_jitter(x: f64) -> f64 {
    helper_noise(x)
}

fn helper_noise(x: f64) -> f64 {
    let t = std::time::Instant::now();
    x + t.elapsed().as_secs_f64()
}

/// Hot root with a direct source in its own body.
pub fn gram_sweep_env(x: f64) -> f64 {
    match std::env::var("TT_FIXTURE_KNOB") {
        Ok(_) => x + 1.0,
        Err(_) => x,
    }
}

/// NOT reachable from any hot root: clock reads here are fine.
pub fn report_elapsed() -> f64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs_f64()
}
