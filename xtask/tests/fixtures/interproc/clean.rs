//! Interprocedural clean fixture: hot paths that do everything right stay
//! silent under all three graph passes.
//!
//! * collectives issued unconditionally on every rank (no rank-divergent
//!   control flow above them);
//! * per-iteration buffers routed through the sanctioned scratch-pool
//!   surface (`take`/`recycle`), whose warm-up allocation neither fires nor
//!   propagates;
//! * no nondeterminism source anywhere on the hot path.

pub struct Pool {
    free: Vec<Vec<f64>>,
}

impl Pool {
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        self.free.pop().unwrap_or_else(|| vec![0.0; n])
    }

    pub fn recycle(&mut self, buf: Vec<f64>) {
        self.free.push(buf);
    }
}

pub fn round_clean(comm: &Communicator, pool: &mut Pool, n: usize) -> f64 {
    let mut acc = 0.0;
    for _ in 0..n {
        let buf = pool.take(8);
        acc += buf[0];
        pool.recycle(buf);
    }
    unconditional_reduce(comm, acc)
}

fn unconditional_reduce(comm: &Communicator, x: f64) -> f64 {
    comm.allreduce_sum(x)
}
