//! `determinism` sanctioning of the runtime-autotune probe: functions
//! named `tune_probe*` are the one-shot hardware/configuration probe
//! surface (their reads are memoized into a process-lifetime constant),
//! so their environment reads neither fire in place nor taint hot-path
//! callers — while the identical read outside the naming convention, on
//! the same hot path, still fires.

/// Hot root (`gemm` prefix) reaching the probe through a direct call:
/// the whole chain stays silent.
pub fn gemm_tuned(x: f64) -> f64 {
    let (mc, kc) = tune_probe_block_sizes();
    x * (mc + kc) as f64
}

/// Probe: reads the environment once at first use. Sanctioned by name.
fn tune_probe_block_sizes() -> (usize, usize) {
    match std::env::var("TT_FIXTURE_BLOCK_MC") {
        Ok(v) => (v.len(), 256),
        Err(_) => (128, 256),
    }
}

/// Control: the same environment read outside the probe naming
/// convention, directly inside a hot root — still fires.
pub fn gemm_knobbed(x: f64) -> f64 {
    match std::env::var("TT_FIXTURE_KNOB") {
        Ok(_) => x + 1.0,
        Err(_) => x,
    }
}
