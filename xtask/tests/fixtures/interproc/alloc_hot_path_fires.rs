//! `alloc_hot_path` positives and the two designed negatives: the same-file
//! helper rule (hidden-allocation refactors still fire) and the cross-file
//! API exemption (a callee whose allocation is its documented contract does
//! not re-flag every call site).

/// Hot root: a direct allocation in the loop and a call to a same-file
/// helper that hides one — both fire.
pub fn gram_sweep_local(n: usize) -> f64 {
    let mut acc = 0.0;
    for i in 0..n {
        let v = vec![0.0; 4];
        acc += v[0] + helper_alloc(i);
    }
    acc
}

fn helper_alloc(i: usize) -> f64 {
    let mut scratch = Vec::with_capacity(i + 1);
    scratch.push(1.0);
    scratch[0]
}

/// Hot root calling the *cross-file* allocator `helpers.rs::fresh_buf` in a
/// loop: silent by design — the fact propagates (visible in `--stats` and
/// to other passes) but the call site is the API boundary, not a hidden
/// regression.
pub fn round_api_boundary(n: usize) -> f64 {
    let mut acc = 0.0;
    for _ in 0..n {
        let buf = fresh_buf(8);
        acc += buf[0];
    }
    acc
}
