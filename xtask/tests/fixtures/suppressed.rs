//! Fixture: valid suppressions silence findings (standalone and trailing).

fn documented_sentinel(x: f64) -> bool {
    // analyze::allow(float_cmp): fixture — exact sentinel comparison is intended
    x == 0.0
}

fn documented_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // analyze::allow(panic_surface): fixture — invariant documented here
}
