//! Fixture: malformed suppressions (missing reason, unknown pass) error out.

// analyze::allow(panic_surface):
fn a() {}

// analyze::allow(no_such_pass): the pass name does not exist
fn b() {}
