//! Fixture: a suppression that silences nothing must be reported.

// analyze::allow(float_cmp): nothing on the next line compares floats
fn fine(x: u32) -> u32 {
    x + 1
}
