//! Fixture: `rank_collective` fires on rank-guarded collectives.

fn guarded_broadcast(comm: &C) {
    let rank = comm.rank();
    if rank == 0 {
        comm.broadcast(0, &mut [0.0]);
    }
}

fn collective_after_guarded_return(comm: &C) {
    if comm.rank() > 0 {
        return;
    }
    comm.barrier();
}
