//! Fixture: `narrow_cast` fires on narrowing and truncating casts.

fn narrows(n: usize, x: f64) -> usize {
    let a = n as u32;
    let b = x as f32;
    let c = x.ceil() as usize;
    let d = 2.5 as u64;
    c + d as usize + a as usize + b as usize
}
