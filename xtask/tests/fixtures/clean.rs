//! Fixture: every pass must stay silent on these correct idioms.

fn rank_uniform_collective(comm: &C) -> f64 {
    let rank = comm.rank();
    let scale = if rank == 0 { 2 } else { 1 };
    let mut buf = [scale as f64];
    comm.allreduce_sum(&mut buf);
    buf[0]
}

fn guarded_exchange(comm: &C, rank: usize) {
    if rank == 0 {
        comm.send(1, &[1.0]);
        let _ = comm.recv(1);
    } else {
        let _ = comm.recv(0);
        comm.send(0, &[1.0]);
    }
}

fn tolerance_compare(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12
}

fn widening_cast(n: u32) -> u64 {
    n as u64
}

fn contracts(n: usize) -> usize {
    assert!(n > 0, "asserts are allowed: contract checks are the point");
    match n {
        0 => unreachable!("unreachable! marks impossible branches"),
        k => k,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let x: Option<f64> = Some(0.0);
        assert!(x.unwrap() == 0.0);
        panic!("even this is fine in tests");
    }
}
