//! Fixture: `p2p_pairing` fires on unpaired and deadlock-shaped p2p.

fn fire_and_forget(comm: &C) {
    comm.send(1, &[1.0]);
}

fn symmetric_swap_wrong_order(comm: &C, peer: usize) {
    let msg = comm.recv(peer);
    comm.send(peer, &msg);
}
