//! Cross-file halves of the ring exchange in `deadlock_fires.rs`. Each
//! helper documents its unpaired half for the per-file `p2p_pairing` pass;
//! only the interprocedural `deadlock_check` can see that their
//! composition forms a recv-before-send cycle.

/// Blocking receive from the ring predecessor.
pub fn pull_from_prev(comm: &Communicator, rank: usize, p: usize) -> f64 {
    // analyze::allow(p2p_pairing): fixture — the matching send is issued by
    // the ring successor through `deadlock_fires.rs`.
    comm.recv((rank + p - 1) % p)
}

/// Blocking send to the ring successor.
pub fn push_to_next(comm: &Communicator, rank: usize, p: usize, x: f64) {
    // analyze::allow(p2p_pairing): fixture — the matching recv is posted by
    // the ring predecessor through `deadlock_fires.rs`.
    comm.send((rank + 1) % p, x);
}
