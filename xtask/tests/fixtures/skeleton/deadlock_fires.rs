//! `deadlock_check` positive: a ring where every rank posts its blocking
//! receive before anyone sends. The two halves live in `peers.rs`, so the
//! per-file `p2p_pairing` pass sees only two documented fragments — it
//! takes the bounded interleaving of the composed cross-file skeleton to
//! show that all p ranks block at the recv with no message in flight.

pub fn ring_exchange_dist(comm: &Communicator, buf: f64) -> f64 {
    let rank = comm.rank();
    let p = comm.size();
    let got = pull_from_prev(comm, rank, p);
    push_to_next(comm, rank, p, buf);
    got
}
