//! Suppression fixture for the skeleton passes: every finding below is
//! real (each fires without its annotation) and every annotation must be
//! consumed.

// analyze::allow(deadlock_check): fixture — documented handshake; the
// schedule is serialized by an out-of-band barrier in the caller.
pub fn handshake_dist(comm: &Communicator, buf: f64) -> f64 {
    let rank = comm.rank();
    let peer = rank ^ 1;
    let got = comm.recv(peer); // analyze::allow(p2p_pairing): fixture — see above.
    comm.send(peer, got + buf);
    got
}

fn lead_sync(comm: &Communicator) {
    comm.barrier();
}

// analyze::allow(deadlock_check): fixture — rank 0's extra barrier is
// matched by the watchdog thread in the scenario this models.
pub fn staged_bcast_dist(comm: &Communicator, y: f64) -> f64 {
    let rank = comm.rank();
    // analyze::allow(protocol_match): fixture — asymmetry documented above.
    if rank == 0 {
        lead_sync(comm); // analyze::allow(collective_order): fixture — see above.
        comm.broadcast(0, y); // analyze::allow(rank_collective): fixture — see above.
    } else {
        comm.broadcast(0, y); // analyze::allow(rank_collective): fixture — see above.
    }
    y
}
