//! Clean nonblocking fixtures: the deferred-rendezvous model must verify
//! both pipelined shapes the rounding sweeps use.
//!
//! * `gram_pipeline_dist` — two collectives posted back to back, waited in
//!   post order, closing broadcast: the overlap schedule of the Gram sweep.
//! * `ring_prepost_dist` — the neighbor ring whose *blocking* form (recv
//!   first on every rank) is the canonical deadlock in deadlock_fires.rs;
//!   pre-posting the receive and waiting it after the eager isend is the
//!   legal pipelined variant and must stay silent.

pub fn gram_pipeline_dist(comm: &Communicator, buf: f64) {
    let first = comm.iallreduce_sum(buf);
    let second = comm.iallreduce_sum(buf);
    let g0 = first.wait();
    let g1 = second.wait();
    comm.broadcast(0, g1);
}

pub fn ring_prepost_dist(comm: &Communicator, buf: f64) -> f64 {
    let rank = comm.rank();
    let p = comm.size();
    let inbound = comm.irecv((rank + p - 1) % p);
    comm.isend((rank + 1) % p, buf).wait();
    inbound.wait()
}
