//! Clean TSQR-shaped fixture: binomial upsweep (send up / recv and
//! remember), rank-0-rooted downsweep, closing broadcast. Every p2p op is
//! rank-guarded and the bounded interleaving completes at every p in
//! {2, 3, 4}, so all skeleton passes must stay silent.

pub fn tsqr_combine_dist(comm: &Communicator, buf: f64) {
    let rank = comm.rank();
    let p = comm.size();
    let mut mask = 1;
    let mut sent_at = 0;
    let mut sent = 0;
    while mask < p {
        if rank & mask != 0 {
            comm.send(rank - mask, buf);
            sent_at = mask;
            sent = 1;
            break;
        } else if rank + mask < p {
            let q = comm.recv(rank + mask);
        }
        mask <<= 1;
    }
    if rank != 0 {
        let t = comm.recv(rank - sent_at);
    }
    let mut m = mask;
    while m > 0 {
        if rank & m == 0 && rank + m < p {
            if sent == 0 || m < sent_at {
                comm.send(rank + m, buf);
            }
        }
        m = m / 2;
    }
    comm.broadcast(0, buf);
}
