//! `protocol_match` / `deadlock_check` positives: a rank-conditional branch
//! whose arms emit different collective sequences, reached only through
//! helpers — the per-file `rank_collective` pass never sees a collective
//! name near the `rank` test, and the count mismatch (barrier + broadcast
//! vs broadcast alone) is exactly the shape that hangs a real job.

pub fn sweep_report_dist(comm: &Communicator, x: f64) -> f64 {
    let rank = comm.rank();
    let y = stage_reduce(comm, x);
    if rank == 0 {
        sync_team(comm);
        share_result(comm, y);
    } else {
        share_result(comm, y);
    }
    y
}

fn stage_reduce(comm: &Communicator, x: f64) -> f64 {
    comm.allreduce_sum(x)
}

fn sync_team(comm: &Communicator) {
    comm.barrier();
}

fn share_result(comm: &Communicator, y: f64) {
    comm.broadcast(0, y);
}
