//! Unused-suppression fixture: both annotations name real skeleton passes
//! but match no diagnostic, so `--check-suppressions` (the default) must
//! report them and `--fix-suppressions --apply` must remove them — the
//! standalone comment as a whole line, the trailing one back to bare code.

pub fn quiet_dist(comm: &Communicator, x: f64) -> f64 {
    // analyze::allow(deadlock_check): fixture — nothing deadlocks here.
    let y = comm.allreduce_sum(x); // analyze::allow(protocol_match): fixture — no rank branch.
    y
}
