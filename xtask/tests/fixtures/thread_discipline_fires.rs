//! Fixture: every construct `thread_discipline` flags, plus the scoped
//! fork/join shape it sanctions (which must stay silent), plus a
//! documented suppression of the detached-spawn rule.

use std::sync::Mutex;
use std::thread;

pub fn detached_worker() {
    let handle = thread::spawn(|| 1 + 1);
    drop(handle);
}

pub fn fully_qualified_detached() {
    std::thread::spawn(|| ());
}

pub struct LockedAccumulator {
    total: Mutex<f64>,
}

pub fn guarded(x: &std::sync::RwLock<Vec<f64>>) -> usize {
    x.read().map(|v| v.len()).unwrap_or(0)
}

pub fn waits(cv: &std::sync::Condvar) {
    let _ = cv;
}

/// Scoped fork/join over disjoint chunks: the sanctioned shape — silent.
pub fn scoped_is_fine(data: &mut [f64]) {
    thread::scope(|s| {
        for chunk in data.chunks_mut(4) {
            s.spawn(move || {
                for x in chunk {
                    *x += 1.0;
                }
            });
        }
    });
}

/// A `spawn` method on a non-`thread` receiver is not the detached form.
pub fn pool_spawn_method(pool: &ScopedPool) {
    pool.spawn(|| ());
}

pub struct ScopedPool;

impl ScopedPool {
    pub fn spawn<F: FnOnce()>(&self, f: F) {
        f();
    }
}

pub fn logger_thread() {
    // analyze::allow(thread_discipline): log drain thread is joined in Drop and touches no numeric state
    thread::spawn(|| ());
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let m = std::sync::Mutex::new(0);
        let t = std::thread::spawn(|| ());
        let _ = (m, t.join());
    }
}
