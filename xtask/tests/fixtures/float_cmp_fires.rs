//! Fixture: `float_cmp` fires on exact float equality.

fn sentinel(x: f64) -> bool {
    x == 0.0
}

fn not_half(x: f64) -> bool {
    1.5 != x
}
