//! The paper's future-work direction (§VI), realized: randomized
//! TT-Rounding. Compares accuracy and speed of all rounding methods —
//! deterministic and the four randomized variants — on a tensor with
//! redundant ranks.
//!
//! Run with: `cargo run --release --example randomized_rounding`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use rand::SeedableRng;
use tt_gram_round::tt::round::{round_randomized, RandomizedOptions, RandomizedVariant};
use tt_gram_round::tt::synthetic::generate_redundant;
use tt_gram_round::tt::{round_gram_lrl, round_gram_rlr, round_gram_simultaneous, round_qr};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    // Model-4-like shape at reduced size: 2500 × 20⁹, ranks 20 → 10.
    let mut dims = vec![20usize; 10];
    dims[0] = 2500;
    let x = generate_redundant(&dims, 10, &mut rng);
    let norm = x.norm();
    println!(
        "x: {} modes, I1 = {}, formal ranks {} (true ranks {})",
        x.order(),
        dims[0],
        x.max_rank(),
        x.max_rank() / 2
    );
    println!();
    println!(
        "{:<22} {:>10} {:>10} {:>12}",
        "method", "time", "max rank", "rel error"
    );

    let timed = |name: &str, f: &dyn Fn() -> tt_gram_round::tt::TtTensor| {
        let t0 = std::time::Instant::now();
        let y = f();
        let dt = t0.elapsed().as_secs_f64();
        let err = y.sub(&x).norm() / norm;
        println!(
            "{:<22} {:>8.1}ms {:>10} {:>12.2e}",
            name,
            dt * 1e3,
            y.max_rank(),
            err
        );
    };

    timed("TT-Round-QR (Alg 2)", &|| round_qr(&x, 1e-8));
    timed("Gram-Sim (Alg 5)", &|| round_gram_simultaneous(&x, 1e-8));
    timed("Gram-RLR (Alg 6)", &|| round_gram_rlr(&x, 1e-8));
    timed("Gram-LRL (Alg 6)", &|| round_gram_lrl(&x, 1e-8));
    let fixed = |v: RandomizedVariant| RandomizedOptions::uniform(10, dims.len()).variant(v);
    let rto = fixed(RandomizedVariant::RandThenOrth);
    timed("Rand-then-orth", &|| round_randomized(&x, &rto));
    let otr = fixed(RandomizedVariant::OrthThenRand);
    timed("Orth-then-rand", &|| round_randomized(&x, &otr));
    let two = fixed(RandomizedVariant::TwoSided);
    timed("Two-sided (Nystrom)", &|| round_randomized(&x, &two));
    let akr = RandomizedOptions::adaptive(1e-7);
    timed("Adaptive KR (eps)", &|| round_randomized(&x, &akr));

    println!();
    println!("expected ordering (paper §IV-E + §VI): QR slowest; sequence Gram variants");
    println!("beat the simultaneous one; rand-then-orth cheapest of all, at the price");
    println!("of a fixed target rank. Orth-then-rand pays one extra sweep for a");
    println!("computable error certificate; two-sided skips orthogonalization but its");
    println!("pseudo-inverse costs accuracy; adaptive KR needs no target rank — it");
    println!("grows the sketch until the eps-certificate holds.");
    println!("(rel errors sit at the sqrt(eps) TT-inner-product floor, ~1e-8)");
}
