//! The §III story: truncating a low-rank matrix product `X = A·Bᵀ` with the
//! three methods the paper compares, including the robustness scenario where
//! pivoted Cholesky QR fails and Gram SVD survives.
//!
//! Run with: `cargo run --release --example matrix_truncation`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use rand::SeedableRng;
use tt_gram_round::linalg::{gemm, householder_qr, Matrix, Trans};
use tt_gram_round::tt::matprod::{mat_rounding_qr, tsvd_abt_cholqr, tsvd_abt_gram};

fn rel_err(x: &Matrix, a: &Matrix, b: &Matrix) -> f64 {
    let mut d = gemm(Trans::No, a, Trans::Yes, b, 1.0);
    d.axpy(-1.0, x);
    d.fro_norm() / x.fro_norm()
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    // ---- Part 1: a product with a decaying spectrum. ----
    let (m, k, r) = (3000usize, 2500usize, 30usize);
    let qa = householder_qr(&Matrix::gaussian(m, r, &mut rng)).thin_q();
    let qb = householder_qr(&Matrix::gaussian(k, r, &mut rng)).thin_q();
    let mut a = qa;
    for j in 0..r {
        a.scale_col(j, 0.5f64.powi(j as i32)); // sigma_j = 2^{-j}
    }
    let b = qb;
    let x = gemm(Trans::No, &a, Trans::Yes, &b, 1.0);
    let thr = 1e-4 * x.fro_norm();

    println!("X = A Bt with {m}x{r} and {k}x{r} factors, sigma_j = 2^-j, threshold 1e-4");
    for (name, run) in [
        (
            "Alg 3 (QR)        ",
            mat_rounding_qr as fn(&Matrix, &Matrix, f64) -> _,
        ),
        ("Alg 4 (Gram SVD)  ", tsvd_abt_gram),
        ("PivChol QR (S3B1) ", tsvd_abt_cholqr),
    ] {
        let t0 = std::time::Instant::now();
        let t = run(&a, &b, thr);
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "  {name}: rank {} -> {:2}, rel err {:.2e}, {:.1} ms",
            r,
            t.rank,
            rel_err(&x, &t.a_hat, &t.b_hat),
            dt * 1e3
        );
    }

    // ---- Part 2: the robustness scenario of §III-B2. ----
    // A has a direction of size ~sqrt(machine eps) that B amplifies by 1e7:
    // pivoted Cholesky truncates it sharply; Gram SVD keeps an inaccurate
    // but useful approximation of it and reconstructs X far better.
    println!();
    println!("robustness scenario: sigma_min(A) = 1e-8 amplified by 1e7 in B");
    let n = 6;
    let mut a = householder_qr(&Matrix::gaussian(2000, n, &mut rng)).thin_q();
    let mut b = householder_qr(&Matrix::gaussian(2000, n, &mut rng)).thin_q();
    a.scale_col(n - 1, 1e-8);
    b.scale_col(n - 1, 1e7);
    let x = gemm(Trans::No, &a, Trans::Yes, &b, 1.0);
    let thr = 1e-6 * x.fro_norm();
    let t_gram = tsvd_abt_gram(&a, &b, thr);
    let t_chol = tsvd_abt_cholqr(&a, &b, thr);
    println!(
        "  Gram SVD:        rank {} , rel err {:.2e}",
        t_gram.rank,
        rel_err(&x, &t_gram.a_hat, &t_gram.b_hat)
    );
    println!(
        "  Pivoted CholQR:  rank {} , rel err {:.2e}   <- sharp sqrt(eps) cutoff",
        t_chol.rank,
        rel_err(&x, &t_chol.a_hat, &t_chol.b_hat)
    );
}
