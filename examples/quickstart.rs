//! Quickstart: build a TT tensor, grow its ranks with formal arithmetic,
//! and round them back down with Gram-SVD TT-Rounding.
//!
//! Run with: `cargo run --release --example quickstart`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use rand::SeedableRng;
use tt_gram_round::tt::{round_gram_lrl, round_qr, RoundingOptions, TtTensor};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // A random 6-way TT tensor: dimensions 40 × 30 × … × 30, all TT ranks 8.
    let dims = [40usize, 30, 30, 30, 30, 30];
    let ranks = [8usize; 5];
    let x = TtTensor::random(&dims, &ranks, &mut rng);
    println!("x:       dims {:?}, ranks {:?}", x.dims(), x.ranks());
    println!(
        "         {} parameters for {:.1e} explicit entries",
        x.storage_len(),
        x.dense_len()
    );

    // Formal arithmetic grows ranks: 3x + 2x has ranks 16 but is just 5x.
    let mut x3 = x.clone();
    x3.scale(3.0);
    let mut x2 = x.clone();
    x2.scale(2.0);
    let y = x3.add(&x2);
    println!("3x + 2x: ranks {:?} (formal growth)", y.ranks());

    // TT-Rounding via Gram SVD recovers the true ranks.
    let rounded = round_gram_lrl(&y, 1e-10);
    println!("rounded: ranks {:?}", rounded.ranks());

    // The result is (numerically) exactly 5x.
    let mut expect = x.clone();
    expect.scale(5.0);
    let rel_err = rounded.sub(&expect).norm() / expect.norm();
    println!("relative error vs 5x: {rel_err:.2e}");

    // The QR-based baseline computes the same thing, more slowly.
    let t0 = std::time::Instant::now();
    let _ = round_qr(&y, 1e-10);
    let t_qr = t0.elapsed();
    let t0 = std::time::Instant::now();
    let _ = round_gram_lrl(&y, 1e-10);
    let t_gram = t0.elapsed();
    println!(
        "rounding time: QR {:.1} ms vs Gram-LRL {:.1} ms ({:.1}x)",
        t_qr.as_secs_f64() * 1e3,
        t_gram.as_secs_f64() * 1e3,
        t_qr.as_secs_f64() / t_gram.as_secs_f64()
    );

    // Rank caps are available for fixed-rank compression.
    let capped = tt_gram_round::tt::round::round_gram_seq_dist(
        &tt_gram_round::comm::SelfComm::new(),
        &y,
        &RoundingOptions::with_tolerance(1e-10).max_rank(4),
        tt_gram_round::tt::GramOrder::Lrl,
    )
    .0;
    println!("rank-capped to 4: ranks {:?}", capped.ranks());
}
