//! The paper's §VI outlook, realized end-to-end: a *distributed* TT-GMRES
//! solve of the cookies problem, run here on real threads — every operation
//! (operator application, preconditioning, rounding, inner products) in its
//! 1-D-distributed form.
//!
//! Run with: `cargo run --release --example distributed_solver`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use tt_gram_round::comm::{Communicator, ThreadComm};
use tt_gram_round::cookies::CookiesProblem;
use tt_gram_round::solvers::gmres::TrueResidualMode;
use tt_gram_round::solvers::{
    dist_tt_gmres, tt_gmres, DistKroneckerOperator, DistMeanPreconditioner, GmresOptions,
    RoundingMethod,
};
use tt_gram_round::tt::{gather_tensor, scatter_tensor};

fn main() {
    let problem = CookiesProblem::new(10, 3);
    let dims = problem.dims();
    let op = problem.operator();
    let f = problem.rhs();
    let mean = problem.mean_matrix();
    let opts = GmresOptions {
        tolerance: 1e-5,
        max_iters: 40,
        rounding: RoundingMethod::GramLrl,
        true_residual: TrueResidualMode::Off,
        stagnation_window: 5,
        restart: None,
    };

    println!(
        "cookies problem: dims {:?} ({} parameter combinations)",
        dims,
        problem.samples.iter().map(|s| s.len()).product::<usize>()
    );

    // Sequential reference.
    let t0 = std::time::Instant::now();
    let (u_seq, tr_seq) = tt_gmres(&op, &problem.mean_preconditioner(), &f, &opts);
    println!(
        "sequential:    {} iterations, residual {:.2e}, {:.2}s",
        tr_seq.iterations.len(),
        tr_seq.computed_relative_residual,
        t0.elapsed().as_secs_f64()
    );

    // Distributed solves on P threads (1-core machines time-share; the
    // point here is bitwise-equivalent results through real collectives).
    for p in [2usize, 4] {
        let (op2, f2, mean2, dims2, opts2) = (
            op.clone(),
            f.clone(),
            mean.clone(),
            dims.clone(),
            opts.clone(),
        );
        let results = ThreadComm::run(p, |comm| {
            let dop = DistKroneckerOperator::new(&op2, &dims2, p, comm.rank());
            let pre = DistMeanPreconditioner::new(&mean2);
            let local_f = scatter_tensor(&f2, &comm);
            let (u, tr) = dist_tt_gmres(&comm, &dop, &pre, &local_f, &opts2);
            (
                gather_tensor(&u, &dims2, &comm),
                tr.iterations.len(),
                tr.computed_relative_residual,
            )
        });
        let (u_dist, iters, resid) = &results[0];
        let gap = u_dist.sub(&u_seq).norm() / (1.0 + u_seq.norm());
        println!(
            "P = {p} threads: {iters} iterations, residual {resid:.2e}, gap to sequential {gap:.1e}"
        );
    }
    println!();
    println!("every rank executes the same Krylov iteration; the only communication is");
    println!("the rounding/inner-product allreduces plus the mode-1 core exchange for");
    println!("the stiffness factor and preconditioner (see tt_solvers::dist_gmres).");
}
