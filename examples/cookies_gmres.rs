//! Solve the parametrized cookies problem with TT-GMRES (§II-C / §V-D of
//! the paper): one solve covering *every* combination of parameter values
//! at once, with TT-Rounding keeping the Krylov ranks small.
//!
//! Run with: `cargo run --release --example cookies_gmres`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use tt_gram_round::cookies::CookiesProblem;
use tt_gram_round::solvers::gmres::TrueResidualMode;
use tt_gram_round::solvers::{tt_gmres, GmresOptions, RoundingMethod};

fn main() {
    // 4 disks, 14×14 spatial grid, 6 parameter samples per disk:
    // the full solution tensor has 196 · 6⁴ ≈ 254K entries across 1296
    // parameter combinations — solved in one TT-GMRES run.
    let problem = CookiesProblem::new(14, 6);
    println!(
        "cookies problem: grid {}x{} (I1 = {}), p = {} disks, {} samples each",
        problem.grid,
        problem.grid,
        problem.spatial_dim(),
        problem.num_params(),
        problem.samples[0].len()
    );
    println!(
        "tensor space: {:?} = {:.2e} unknowns ({} parameter combinations)",
        problem.dims(),
        problem.dims().iter().map(|&d| d as f64).product::<f64>(),
        problem.samples.iter().map(|s| s.len()).product::<usize>()
    );

    let op = problem.operator();
    let f = problem.rhs();
    let pre = problem.mean_preconditioner();
    println!("operator rank: {} (Kronecker terms)", op.operator_rank());

    for method in [RoundingMethod::Qr, RoundingMethod::GramLrl] {
        let opts = GmresOptions {
            tolerance: 1e-6,
            max_iters: 50,
            rounding: method,
            true_residual: TrueResidualMode::Tt,
            stagnation_window: 5,
            restart: None,
        };
        let (u, trace) = tt_gmres(&op, &pre, &f, &opts);
        println!();
        println!("rounding = {}:", method.name());
        println!(
            "  converged in {} iterations; computed residual {:.2e}, true residual {:.2e}",
            trace.iterations.len(),
            trace.computed_relative_residual,
            trace.true_relative_residual
        );
        println!(
            "  solution TT ranks {:?} ({} parameters vs {:.1e} dense entries)",
            u.ranks(),
            u.storage_len(),
            u.dense_len()
        );
        println!(
            "  time: {:.2}s total, {:.2}s in TT-Rounding ({:.0}%)",
            trace.total_seconds,
            trace.rounding_seconds,
            100.0 * trace.rounding_seconds / trace.total_seconds
        );

        // Read one concrete solution out of the compressed tensor: the
        // solution at the parameter combination (rho_1, ..., rho_4) given by
        // sample indices (0, 3, 5, 7), evaluated at the domain center.
        let center = problem.spatial_dim() / 2 + problem.grid / 2;
        let val = u.eval(&[center, 0, 2, 4, 5]);
        println!("  u(center; rho = samples [0,2,4,5]) = {val:.6}");
    }
}
