//! The Fig. 6 story in miniature: does Gram-SVD rounding (accuracy limited
//! to √ε) degrade TT-GMRES? Run the same solve with QR and Gram rounding at
//! loose and tight tolerances and compare residuals and ranks.
//!
//! Run with: `cargo run --release --example gmres_accuracy`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use tt_gram_round::cookies::CookiesProblem;
use tt_gram_round::solvers::gmres::TrueResidualMode;
use tt_gram_round::solvers::{tt_gmres, GmresOptions, RoundingMethod};

fn main() {
    // Small Fig. 6-style configuration (12² grid, 5 samples per disk) —
    // sized so the whole three-tolerance sweep runs in about a minute.
    let problem = CookiesProblem::new(12, 5);
    let op = problem.operator();
    let f = problem.rhs();
    let pre = problem.mean_preconditioner();

    println!(
        "cookies {}x{} grid, dims {:?}",
        problem.grid,
        problem.grid,
        problem.dims()
    );
    println!();

    for tol in [1e-2, 1e-6, 1e-10] {
        println!("epsilon = {tol:.0e}:");
        for method in [RoundingMethod::Qr, RoundingMethod::GramLrl] {
            let opts = GmresOptions {
                tolerance: tol,
                max_iters: 40,
                rounding: method,
                true_residual: TrueResidualMode::Dense,
                stagnation_window: 5,
                restart: None,
            };
            let (_, trace) = tt_gmres(&op, &pre, &f, &opts);
            println!(
                "  {:<9} iters {:>3}  computed resid {:.2e}  true resid {:.2e}  max rank {}",
                method.name(),
                trace.iterations.len(),
                trace.computed_relative_residual,
                trace.true_relative_residual,
                trace.max_krylov_rank()
            );
        }
        println!();
    }
    println!("expected (the paper's Fig. 6 conclusion): residuals agree at every");
    println!("tolerance; only at eps = 1e-10 does the Gram variant inflate the TT");
    println!("ranks (it cannot resolve singular values below sqrt(machine eps)).");
}
