//! A compact scaling study: strong-scale TT-Rounding of a Table-I-style
//! tensor across simulated rank counts, and validate the distributed
//! algorithms against the sequential ones with real threads.
//!
//! Run with: `cargo run --release --example scaling_study`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use rand::SeedableRng;
use tt_gram_round::comm::{Communicator, CostModel, ThreadComm};
use tt_gram_round::tt::round::round_gram_seq_dist;
use tt_gram_round::tt::synthetic::{generate_redundant, ModelSpec};
use tt_gram_round::tt::{gather_tensor, scatter_tensor, GramOrder, RoundingOptions};

fn main() {
    // ---- Part 1: correctness of the distributed algorithm (real threads).
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let x = generate_redundant(&[64, 40, 48, 40], 6, &mut rng);
    println!("validating distributed rounding on real threads:");
    let seq = round_gram_seq_dist(
        &tt_gram_round::comm::SelfComm::new(),
        &x,
        &RoundingOptions::with_tolerance(1e-9),
        GramOrder::Lrl,
    )
    .0;
    for p in [2usize, 4] {
        let xs = x.clone();
        let dims = x.dims();
        let gathered = ThreadComm::run(p, |comm| {
            let local = scatter_tensor(&xs, &comm);
            let (rounded, _) = round_gram_seq_dist(
                &comm,
                &local,
                &RoundingOptions::with_tolerance(1e-9),
                GramOrder::Lrl,
            );
            gather_tensor(&rounded, &dims, &comm)
        });
        let gap = gathered[0].sub(&seq).norm() / (1.0 + seq.norm());
        println!(
            "  P = {p}: ranks {:?}, gap to sequential {gap:.1e}",
            gathered[0].ranks()
        );
    }

    // ---- Part 2: modeled strong scaling (the Fig. 2 methodology). ----
    println!();
    println!("modeled strong scaling, model 1 at 1/10 scale (measured local compute +");
    println!("LogP-modeled communication; see DESIGN.md):");
    let spec = ModelSpec::table1(1).scaled(0.1);
    let cost = CostModel::default();
    println!(
        "  {:>5} {:>12} {:>12} {:>12} {:>9}",
        "P", "compute", "comm", "total", "speedup"
    );
    let mut t1 = None;
    for p in [1usize, 4, 16, 64, 256] {
        let run = tt_bench_like(&spec, p, &cost);
        let total = run.0 + run.1;
        let t1v = *t1.get_or_insert(total);
        println!(
            "  {:>5} {:>10.1}ms {:>10.3}ms {:>10.1}ms {:>8.1}x",
            p,
            run.0 * 1e3,
            run.1 * 1e3,
            total * 1e3,
            t1v / total
        );
    }
}

/// One modeled scaling point (the same recipe the fig2/fig3 harnesses use).
fn tt_bench_like(spec: &ModelSpec, p: usize, cost: &CostModel) -> (f64, f64) {
    use tt_gram_round::comm::ModelComm;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let local: Vec<usize> = spec.dims.iter().map(|&d| d.div_ceil(p)).collect();
    let x = generate_redundant(&local, spec.target_rank, &mut rng);
    let comm = ModelComm::new(p);
    let opts = RoundingOptions::with_tolerance(1e-8).max_rank(spec.target_rank);
    let t0 = std::time::Instant::now();
    let _ = round_gram_seq_dist(&comm, &x, &opts, GramOrder::Lrl);
    (
        t0.elapsed().as_secs_f64(),
        comm.stats().modeled_time(cost, p),
    )
}
