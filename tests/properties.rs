//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use tt_gram_round::tt::{
    round_gram_lrl, round_gram_rlr, round_gram_simultaneous, round_qr, scatter_tensor, TtTensor,
};

/// Strategy: a random small TT shape (dims, ranks) plus a seed.
fn tt_shape() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, u64)> {
    (2usize..=5)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(2usize..=7, n),
                proptest::collection::vec(1usize..=5, n - 1),
                any::<u64>(),
            )
        })
        .prop_filter("ranks must be representable", |(dims, ranks, _)| {
            // Every bond rank must not exceed the dimension product on
            // either side (else the true rank differs from the formal one),
            // and the rank chain must be locally feasible
            // (R_b <= R_{b-1}·I_b and R_b <= I_{b+1}·R_{b+1}) so cores are
            // never wider than tall — "overranked" chains make orthonormal
            // unfoldings impossible.
            let n = dims.len();
            let full: Vec<usize> = std::iter::once(1)
                .chain(ranks.iter().copied())
                .chain(std::iter::once(1))
                .collect();
            (1..n).all(|b| {
                let left: usize = dims[..b].iter().product();
                let right: usize = dims[b..].iter().product();
                ranks[b - 1] <= left
                    && ranks[b - 1] <= right
                    && full[b] <= full[b - 1] * dims[b - 1]
                    && full[b] <= dims[b] * full[b + 1]
            })
        })
}

fn build(dims: &[usize], ranks: &[usize], seed: u64) -> TtTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    TtTensor::random(dims, ranks, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ‖X − round(X, ε)‖ ≤ ε‖X‖ for every variant and random tolerance.
    #[test]
    fn rounding_error_bound((dims, ranks, seed) in tt_shape(), tol_exp in 1u32..=6) {
        let x = build(&dims, &ranks, seed);
        let tol = 10f64.powi(-(tol_exp as i32));
        let dense = x.to_dense();
        let norm = dense.fro_norm();
        for (name, y) in [
            ("qr", round_qr(&x, tol)),
            ("rlr", round_gram_rlr(&x, tol)),
            ("lrl", round_gram_lrl(&x, tol)),
            ("sim", round_gram_simultaneous(&x, tol)),
        ] {
            let err = y.to_dense().fro_dist(&dense);
            prop_assert!(
                err <= tol * norm * 1.5 + 1e-12,
                "{} violated the bound: {} > {}", name, err, tol * norm
            );
        }
    }

    /// Rounding never increases any rank.
    #[test]
    fn rounding_never_inflates_ranks((dims, ranks, seed) in tt_shape()) {
        let x = build(&dims, &ranks, seed);
        for y in [round_qr(&x, 1e-10), round_gram_rlr(&x, 1e-10), round_gram_lrl(&x, 1e-10)] {
            for (ra, rb) in y.ranks().iter().zip(x.ranks().iter()) {
                prop_assert!(ra <= rb, "rank inflated: {:?} vs {:?}", y.ranks(), x.ranks());
            }
        }
    }

    /// Rounding is idempotent on ranks: round(round(x)) has the same ranks.
    #[test]
    fn rounding_rank_idempotent((dims, ranks, seed) in tt_shape()) {
        let x = build(&dims, &ranks, seed);
        let once = round_gram_lrl(&x, 1e-6);
        let twice = round_gram_lrl(&once, 1e-6);
        prop_assert_eq!(once.ranks(), twice.ranks());
    }

    /// The redundant construction always halves: round(x + x) recovers x's
    /// ranks and equals 2x.
    #[test]
    fn formal_double_rounds_back((dims, ranks, seed) in tt_shape()) {
        let x = build(&dims, &ranks, seed);
        let doubled = x.add(&x);
        let rounded = round_gram_rlr(&doubled, 1e-9);
        for (ra, rb) in rounded.ranks().iter().zip(x.ranks().iter()) {
            prop_assert!(ra <= rb, "{:?} vs {:?}", rounded.ranks(), x.ranks());
        }
        let mut expect = x.clone();
        expect.scale(2.0);
        let err = rounded.to_dense().fro_dist(&expect.to_dense());
        prop_assert!(err <= 1e-7 * (1.0 + expect.to_dense().fro_norm()));
    }

    /// TT addition and scaling are exact elementwise operations.
    #[test]
    fn arithmetic_is_elementwise((dims, ranks, seed) in tt_shape(), alpha in -3.0f64..3.0) {
        let x = build(&dims, &ranks, seed);
        let y = build(&dims, &ranks, seed.wrapping_add(1));
        let mut ax = x.clone();
        ax.scale(alpha);
        let s = ax.add(&y);
        let (dx, dy, ds) = (x.to_dense(), y.to_dense(), s.to_dense());
        for k in 0..dx.len() {
            let expect = alpha * dx.as_slice()[k] + dy.as_slice()[k];
            prop_assert!((ds.as_slice()[k] - expect).abs() <= 1e-9 * (1.0 + expect.abs()));
        }
    }

    /// Distributed inner products agree with dense inner products for every
    /// rank count.
    #[test]
    fn distributed_inner_agrees((dims, ranks, seed) in tt_shape(), p in 2usize..=4) {
        let x = build(&dims, &ranks, seed);
        let y = build(&dims, &ranks, seed.wrapping_add(9));
        let (dx, dy) = (x.to_dense(), y.to_dense());
        let expect: f64 = dx.as_slice().iter().zip(dy.as_slice()).map(|(a, b)| a * b).sum();
        let vals = tt_comm::run_verified(p, |comm| {
            let xl = scatter_tensor(&x, &comm);
            let yl = scatter_tensor(&y, &comm);
            tt_gram_round::tt::dist::inner_local(&comm, &xl, &yl)
        });
        for v in vals {
            prop_assert!((v - expect).abs() <= 1e-8 * (1.0 + expect.abs()));
        }
    }

    /// `eval` agrees with the dense tensor at random multi-indices.
    #[test]
    fn eval_matches_dense((dims, ranks, seed) in tt_shape(), probe in any::<u64>()) {
        let x = build(&dims, &ranks, seed);
        let d = x.to_dense();
        let mut idx = Vec::with_capacity(dims.len());
        let mut h = probe;
        for &dim in &dims {
            idx.push((h % dim as u64) as usize);
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        prop_assert!((x.eval(&idx) - d.at(&idx)).abs() <= 1e-9 * (1.0 + d.at(&idx).abs()));
    }

    /// Randomized rounding at the true ranks reproduces the tensor — for
    /// every fixed-rank family member. The two-sided variant gets a looser
    /// constant (its error carries a pseudo-inverse conditioning factor).
    #[test]
    fn randomized_rounding_recovers((dims, ranks, seed) in tt_shape()) {
        use tt_gram_round::tt::round::{RandomizedOptions, RandomizedVariant};
        let x = build(&dims, &ranks, seed);
        let doubled = x.add(&x);
        let mut expect = x.clone();
        expect.scale(2.0);
        let dense_expect = expect.to_dense();
        for variant in [
            RandomizedVariant::RandThenOrth,
            RandomizedVariant::OrthThenRand,
            RandomizedVariant::TwoSided,
        ] {
            let opts = RandomizedOptions::with_ranks(ranks.clone())
                .oversample(5)
                .seed(seed ^ 0xabcd)
                .variant(variant);
            let y = tt_gram_round::tt::round::round_randomized(&doubled, &opts);
            for (ra, rb) in y.ranks().iter().zip(x.ranks().iter()) {
                prop_assert!(ra <= rb);
            }
            let err = y.to_dense().fro_dist(&dense_expect);
            let slack = match variant {
                RandomizedVariant::TwoSided => 1e-4,
                _ => 1e-6,
            };
            prop_assert!(
                err <= slack * (1.0 + dense_expect.fro_norm()),
                "{:?}: err {}", variant, err
            );
        }
    }

    /// The adaptive Khatri–Rao variant honors its ε certificate without any
    /// user-supplied target rank, on both rank-deficient inputs (x + x: the
    /// formal rank is double the true rank) and graded-spectrum inputs
    /// (x + δ·y + δ²·z: three well-separated scales).
    #[test]
    fn adaptive_certificate_holds(
        (dims, ranks, seed) in tt_shape(),
        eps_exp in 1u32..=5,
        graded in any::<bool>(),
    ) {
        use tt_gram_round::tt::round::{round_randomized_report, RandomizedOptions};
        let x = build(&dims, &ranks, seed);
        let input = if graded {
            let mut y = build(&dims, &ranks, seed.wrapping_add(17));
            let mut z = build(&dims, &ranks, seed.wrapping_add(34));
            y.scale(1e-2 * x.norm() / y.norm().max(1e-300));
            z.scale(1e-4 * x.norm() / z.norm().max(1e-300));
            x.add(&y).add(&z)
        } else {
            x.add(&x)
        };
        let eps = 10f64.powi(-(eps_exp as i32));
        let opts = RandomizedOptions::adaptive(eps).seed(seed ^ 0x5afe);
        let (y, report) = round_randomized_report(&input, &opts);
        let dense = input.to_dense();
        let norm = dense.fro_norm();
        let err = y.to_dense().fro_dist(&dense);
        // Achieved error honors ε (the whole point: no target rank given).
        prop_assert!(
            err <= eps * norm + 1e-12,
            "achieved {} > ε·‖X‖ = {}", err, eps * norm
        );
        // The certificate is an upper bound on the truth.
        let certified = report.certified_error.unwrap_or(f64::INFINITY);
        prop_assert!(
            err <= (certified + 1e-10) * (norm + 1e-12),
            "true error {} above certificate {}", err, certified * norm
        );
        // And the posterior estimate agrees with the dense truth.
        let posterior = report.posterior_error.unwrap_or(f64::INFINITY);
        prop_assert!(
            (posterior * norm - err).abs() <= 1e-7 * (1.0 + norm),
            "posterior {} vs true {}", posterior * norm, err
        );
    }

    /// Differential test over the whole variant matrix: all four
    /// deterministic rounding algorithms (QR baseline, Gram
    /// RLR/LRL/simultaneous) *and* all four randomized family members,
    /// sequentially and distributed over ThreadComm ranks, agree pairwise
    /// within the §III-B2 theory bound. Each deterministic variant
    /// guarantees ‖X − Y‖ ≤ τ‖X‖ (with the same 1.5 constant-slack the
    /// error-bound test uses); the fixed-rank randomized variants run at the
    /// input's own ranks (no truncation, reproduction up to fp/conditioning)
    /// and the adaptive variant runs at ε = τ, so any two outputs are within
    /// 2·1.5·τ‖X‖ of each other by the triangle inequality — and the
    /// distributed runs must agree because they execute the same arithmetic
    /// on scattered slices.
    #[test]
    fn rounding_variants_agree_pairwise(
        (dims, ranks, seed) in tt_shape(),
        tol_exp in 2u32..=6,
        p in 2usize..=4,
    ) {
        use tt_gram_round::tt::round::{
            round_randomized, round_randomized_dist, RandomizedOptions, RandomizedVariant,
        };
        let x = build(&dims, &ranks, seed);
        let tol = 10f64.powi(-(tol_exp as i32));
        let dense = x.to_dense();
        let norm = dense.fro_norm();
        let bound = 2.0 * 1.5 * tol * norm + 1e-12;

        let rand_opts = |variant: RandomizedVariant| match variant {
            RandomizedVariant::AdaptiveKr => {
                RandomizedOptions::adaptive(tol).seed(seed ^ 0xfeed)
            }
            v => RandomizedOptions::with_ranks(ranks.clone())
                .oversample(5)
                .seed(seed ^ 0xfeed)
                .variant(v),
        };
        let rand_variants = [
            ("rand", RandomizedVariant::RandThenOrth),
            ("orr", RandomizedVariant::OrthThenRand),
            ("two", RandomizedVariant::TwoSided),
            ("akr", RandomizedVariant::AdaptiveKr),
        ];

        // Sequential: SelfComm under the hood.
        let mut outputs: Vec<(String, _)> = vec![
            ("qr/seq".to_string(), round_qr(&x, tol).to_dense()),
            ("rlr/seq".to_string(), round_gram_rlr(&x, tol).to_dense()),
            ("lrl/seq".to_string(), round_gram_lrl(&x, tol).to_dense()),
            ("sim/seq".to_string(), round_gram_simultaneous(&x, tol).to_dense()),
        ];
        for (name, variant) in rand_variants {
            outputs.push((
                format!("{name}/seq"),
                round_randomized(&x, &rand_opts(variant)).to_dense(),
            ));
        }

        // Distributed: the same variants over p thread-backed ranks.
        let opts = tt_gram_round::tt::RoundingOptions::with_tolerance(tol);
        for variant in ["qr", "rlr", "lrl", "sim"] {
            let gathered = tt_comm::run_verified(p, |comm| {
                let local = scatter_tensor(&x, &comm);
                let (rounded, _report) = match variant {
                    "qr" => tt_gram_round::tt::round::round_qr_dist(&comm, &local, &opts),
                    "rlr" => tt_gram_round::tt::round::round_gram_seq_dist(
                        &comm, &local, &opts, tt_gram_round::tt::GramOrder::Rlr),
                    "lrl" => tt_gram_round::tt::round::round_gram_seq_dist(
                        &comm, &local, &opts, tt_gram_round::tt::GramOrder::Lrl),
                    _ => tt_gram_round::tt::round::round_gram_sim_dist(&comm, &local, &opts),
                };
                tt_gram_round::tt::gather_tensor(&rounded, &dims, &comm)
            });
            let mut it = gathered.into_iter();
            if let Some(first) = it.next() {
                outputs.push((format!("{variant}/dist{p}"), first.to_dense()));
            }
        }
        for (name, variant) in rand_variants {
            let ropts = rand_opts(variant);
            let gathered = tt_comm::run_verified(p, |comm| {
                let local = scatter_tensor(&x, &comm);
                let rounded = round_randomized_dist(&comm, &local, &dims, &ropts);
                tt_gram_round::tt::gather_tensor(&rounded, &dims, &comm)
            });
            let mut it = gathered.into_iter();
            if let Some(first) = it.next() {
                outputs.push((format!("{name}/dist{p}"), first.to_dense()));
            }
        }

        for i in 0..outputs.len() {
            for j in i + 1..outputs.len() {
                let d = outputs[i].1.fro_dist(&outputs[j].1);
                prop_assert!(
                    d <= bound,
                    "{} vs {}: pairwise distance {} exceeds the theory bound {}",
                    outputs[i].0, outputs[j].0, d, bound
                );
            }
        }
    }

    /// Sketch-seed robustness: across 64 consecutive sketch seeds at the
    /// default oversampling of 8, the adaptive variant never misses its ε
    /// certificate — closing the gap where a single lucky seed hides a
    /// systematically under-sized sketch.
    #[test]
    fn adaptive_certificate_robust_across_sketch_seeds((dims, ranks, seed) in tt_shape()) {
        use tt_gram_round::tt::round::{round_randomized_report, RandomizedOptions};
        let x = build(&dims, &ranks, seed);
        let input = x.add(&x);
        let dense = input.to_dense();
        let norm = dense.fro_norm();
        let eps = 1e-4;
        for sketch_seed in 0..64u64 {
            let opts = RandomizedOptions::adaptive(eps).oversample(8).seed(sketch_seed);
            let (y, report) = round_randomized_report(&input, &opts);
            let err = y.to_dense().fro_dist(&dense);
            prop_assert!(
                err <= eps * norm + 1e-12,
                "sketch seed {} broke the certificate: {} > {}",
                sketch_seed, err, eps * norm
            );
            prop_assert!(
                report.posterior_error.unwrap_or(f64::INFINITY) <= eps + 1e-10,
                "sketch seed {} posterior miss", sketch_seed
            );
        }
    }

    /// Orthogonalization passes preserve the represented tensor and install
    /// their invariants.
    #[test]
    fn orthogonalization_preserves_value((dims, ranks, seed) in tt_shape()) {
        let x = build(&dims, &ranks, seed);
        let comm = tt_gram_round::comm::SelfComm::new();
        let l = tt_gram_round::tt::orthogonalize_left(&comm, &x);
        let r = tt_gram_round::tt::orthogonalize_right(&comm, &x);
        let d = x.to_dense();
        prop_assert!(l.to_dense().fro_dist(&d) <= 1e-9 * (1.0 + d.fro_norm()));
        prop_assert!(r.to_dense().fro_dist(&d) <= 1e-9 * (1.0 + d.fro_norm()));
        prop_assert!(
            tt_gram_round::tt::orthogonalize::left_orthogonality_defect(&comm, &l) <= 1e-11
        );
    }
}
