//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use tt_gram_round::tt::{
    round_gram_lrl, round_gram_rlr, round_gram_simultaneous, round_qr, scatter_tensor, TtTensor,
};

/// Strategy: a random small TT shape (dims, ranks) plus a seed.
fn tt_shape() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, u64)> {
    (2usize..=5)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(2usize..=7, n),
                proptest::collection::vec(1usize..=5, n - 1),
                any::<u64>(),
            )
        })
        .prop_filter("ranks must be representable", |(dims, ranks, _)| {
            // Every bond rank must not exceed the dimension product on
            // either side (else the true rank differs from the formal one),
            // and the rank chain must be locally feasible
            // (R_b <= R_{b-1}·I_b and R_b <= I_{b+1}·R_{b+1}) so cores are
            // never wider than tall — "overranked" chains make orthonormal
            // unfoldings impossible.
            let n = dims.len();
            let full: Vec<usize> = std::iter::once(1)
                .chain(ranks.iter().copied())
                .chain(std::iter::once(1))
                .collect();
            (1..n).all(|b| {
                let left: usize = dims[..b].iter().product();
                let right: usize = dims[b..].iter().product();
                ranks[b - 1] <= left
                    && ranks[b - 1] <= right
                    && full[b] <= full[b - 1] * dims[b - 1]
                    && full[b] <= dims[b] * full[b + 1]
            })
        })
}

fn build(dims: &[usize], ranks: &[usize], seed: u64) -> TtTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    TtTensor::random(dims, ranks, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ‖X − round(X, ε)‖ ≤ ε‖X‖ for every variant and random tolerance.
    #[test]
    fn rounding_error_bound((dims, ranks, seed) in tt_shape(), tol_exp in 1u32..=6) {
        let x = build(&dims, &ranks, seed);
        let tol = 10f64.powi(-(tol_exp as i32));
        let dense = x.to_dense();
        let norm = dense.fro_norm();
        for (name, y) in [
            ("qr", round_qr(&x, tol)),
            ("rlr", round_gram_rlr(&x, tol)),
            ("lrl", round_gram_lrl(&x, tol)),
            ("sim", round_gram_simultaneous(&x, tol)),
        ] {
            let err = y.to_dense().fro_dist(&dense);
            prop_assert!(
                err <= tol * norm * 1.5 + 1e-12,
                "{} violated the bound: {} > {}", name, err, tol * norm
            );
        }
    }

    /// Rounding never increases any rank.
    #[test]
    fn rounding_never_inflates_ranks((dims, ranks, seed) in tt_shape()) {
        let x = build(&dims, &ranks, seed);
        for y in [round_qr(&x, 1e-10), round_gram_rlr(&x, 1e-10), round_gram_lrl(&x, 1e-10)] {
            for (ra, rb) in y.ranks().iter().zip(x.ranks().iter()) {
                prop_assert!(ra <= rb, "rank inflated: {:?} vs {:?}", y.ranks(), x.ranks());
            }
        }
    }

    /// Rounding is idempotent on ranks: round(round(x)) has the same ranks.
    #[test]
    fn rounding_rank_idempotent((dims, ranks, seed) in tt_shape()) {
        let x = build(&dims, &ranks, seed);
        let once = round_gram_lrl(&x, 1e-6);
        let twice = round_gram_lrl(&once, 1e-6);
        prop_assert_eq!(once.ranks(), twice.ranks());
    }

    /// The redundant construction always halves: round(x + x) recovers x's
    /// ranks and equals 2x.
    #[test]
    fn formal_double_rounds_back((dims, ranks, seed) in tt_shape()) {
        let x = build(&dims, &ranks, seed);
        let doubled = x.add(&x);
        let rounded = round_gram_rlr(&doubled, 1e-9);
        for (ra, rb) in rounded.ranks().iter().zip(x.ranks().iter()) {
            prop_assert!(ra <= rb, "{:?} vs {:?}", rounded.ranks(), x.ranks());
        }
        let mut expect = x.clone();
        expect.scale(2.0);
        let err = rounded.to_dense().fro_dist(&expect.to_dense());
        prop_assert!(err <= 1e-7 * (1.0 + expect.to_dense().fro_norm()));
    }

    /// TT addition and scaling are exact elementwise operations.
    #[test]
    fn arithmetic_is_elementwise((dims, ranks, seed) in tt_shape(), alpha in -3.0f64..3.0) {
        let x = build(&dims, &ranks, seed);
        let y = build(&dims, &ranks, seed.wrapping_add(1));
        let mut ax = x.clone();
        ax.scale(alpha);
        let s = ax.add(&y);
        let (dx, dy, ds) = (x.to_dense(), y.to_dense(), s.to_dense());
        for k in 0..dx.len() {
            let expect = alpha * dx.as_slice()[k] + dy.as_slice()[k];
            prop_assert!((ds.as_slice()[k] - expect).abs() <= 1e-9 * (1.0 + expect.abs()));
        }
    }

    /// Distributed inner products agree with dense inner products for every
    /// rank count.
    #[test]
    fn distributed_inner_agrees((dims, ranks, seed) in tt_shape(), p in 2usize..=4) {
        let x = build(&dims, &ranks, seed);
        let y = build(&dims, &ranks, seed.wrapping_add(9));
        let (dx, dy) = (x.to_dense(), y.to_dense());
        let expect: f64 = dx.as_slice().iter().zip(dy.as_slice()).map(|(a, b)| a * b).sum();
        let vals = tt_comm::run_verified(p, |comm| {
            let xl = scatter_tensor(&x, &comm);
            let yl = scatter_tensor(&y, &comm);
            tt_gram_round::tt::dist::inner_local(&comm, &xl, &yl)
        });
        for v in vals {
            prop_assert!((v - expect).abs() <= 1e-8 * (1.0 + expect.abs()));
        }
    }

    /// `eval` agrees with the dense tensor at random multi-indices.
    #[test]
    fn eval_matches_dense((dims, ranks, seed) in tt_shape(), probe in any::<u64>()) {
        let x = build(&dims, &ranks, seed);
        let d = x.to_dense();
        let mut idx = Vec::with_capacity(dims.len());
        let mut h = probe;
        for &dim in &dims {
            idx.push((h % dim as u64) as usize);
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        prop_assert!((x.eval(&idx) - d.at(&idx)).abs() <= 1e-9 * (1.0 + d.at(&idx).abs()));
    }

    /// Randomized rounding at the true ranks reproduces the tensor.
    #[test]
    fn randomized_rounding_recovers((dims, ranks, seed) in tt_shape()) {
        let x = build(&dims, &ranks, seed);
        let doubled = x.add(&x);
        let opts = tt_gram_round::tt::round::RandomizedOptions {
            target_ranks: ranks.clone(),
            oversampling: 5,
            seed: seed ^ 0xabcd,
        };
        let y = tt_gram_round::tt::round::round_randomized(&doubled, &opts);
        for (ra, rb) in y.ranks().iter().zip(x.ranks().iter()) {
            prop_assert!(ra <= rb);
        }
        let mut expect = x.clone();
        expect.scale(2.0);
        let err = y.to_dense().fro_dist(&expect.to_dense());
        prop_assert!(err <= 1e-6 * (1.0 + expect.to_dense().fro_norm()), "err {}", err);
    }

    /// Differential test over the whole variant matrix: all four rounding
    /// algorithms (QR baseline, Gram RLR/LRL/simultaneous), sequentially and
    /// distributed over ThreadComm ranks, agree pairwise within the §III-B2
    /// theory bound. Each variant guarantees ‖X − Y‖ ≤ τ‖X‖ (with the same
    /// 1.5 constant-slack the error-bound test uses), so any two outputs are
    /// within 2·1.5·τ‖X‖ of each other by the triangle inequality — and the
    /// distributed runs must agree because they execute the same arithmetic
    /// on scattered slices.
    #[test]
    fn rounding_variants_agree_pairwise(
        (dims, ranks, seed) in tt_shape(),
        tol_exp in 2u32..=6,
        p in 2usize..=4,
    ) {
        let x = build(&dims, &ranks, seed);
        let tol = 10f64.powi(-(tol_exp as i32));
        let dense = x.to_dense();
        let norm = dense.fro_norm();
        let bound = 2.0 * 1.5 * tol * norm + 1e-12;

        // Sequential: SelfComm under the hood.
        let mut outputs: Vec<(String, _)> = vec![
            ("qr/seq".to_string(), round_qr(&x, tol).to_dense()),
            ("rlr/seq".to_string(), round_gram_rlr(&x, tol).to_dense()),
            ("lrl/seq".to_string(), round_gram_lrl(&x, tol).to_dense()),
            ("sim/seq".to_string(), round_gram_simultaneous(&x, tol).to_dense()),
        ];

        // Distributed: the same four variants over p thread-backed ranks.
        let opts = tt_gram_round::tt::RoundingOptions::with_tolerance(tol);
        for variant in ["qr", "rlr", "lrl", "sim"] {
            let gathered = tt_comm::run_verified(p, |comm| {
                let local = scatter_tensor(&x, &comm);
                let (rounded, _report) = match variant {
                    "qr" => tt_gram_round::tt::round::round_qr_dist(&comm, &local, &opts),
                    "rlr" => tt_gram_round::tt::round::round_gram_seq_dist(
                        &comm, &local, &opts, tt_gram_round::tt::GramOrder::Rlr),
                    "lrl" => tt_gram_round::tt::round::round_gram_seq_dist(
                        &comm, &local, &opts, tt_gram_round::tt::GramOrder::Lrl),
                    _ => tt_gram_round::tt::round::round_gram_sim_dist(&comm, &local, &opts),
                };
                tt_gram_round::tt::gather_tensor(&rounded, &dims, &comm)
            });
            let mut it = gathered.into_iter();
            if let Some(first) = it.next() {
                outputs.push((format!("{variant}/dist{p}"), first.to_dense()));
            }
        }

        for i in 0..outputs.len() {
            for j in i + 1..outputs.len() {
                let d = outputs[i].1.fro_dist(&outputs[j].1);
                prop_assert!(
                    d <= bound,
                    "{} vs {}: pairwise distance {} exceeds the theory bound {}",
                    outputs[i].0, outputs[j].0, d, bound
                );
            }
        }
    }

    /// Orthogonalization passes preserve the represented tensor and install
    /// their invariants.
    #[test]
    fn orthogonalization_preserves_value((dims, ranks, seed) in tt_shape()) {
        let x = build(&dims, &ranks, seed);
        let comm = tt_gram_round::comm::SelfComm::new();
        let l = tt_gram_round::tt::orthogonalize_left(&comm, &x);
        let r = tt_gram_round::tt::orthogonalize_right(&comm, &x);
        let d = x.to_dense();
        prop_assert!(l.to_dense().fro_dist(&d) <= 1e-9 * (1.0 + d.fro_norm()));
        prop_assert!(r.to_dense().fro_dist(&d) <= 1e-9 * (1.0 + d.fro_norm()));
        prop_assert!(
            tt_gram_round::tt::orthogonalize::left_orthogonality_defect(&comm, &l) <= 1e-11
        );
    }
}
