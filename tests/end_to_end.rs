//! Cross-crate integration tests: the full pipelines the paper's evaluation
//! exercises, wired through the facade crate.

use rand::SeedableRng;
use tt_gram_round::cookies::CookiesProblem;
use tt_gram_round::solvers::gmres::TrueResidualMode;
use tt_gram_round::solvers::{tt_gmres, GmresOptions, RoundingMethod, TtOperator};
use tt_gram_round::tt::synthetic::generate_redundant;
use tt_gram_round::tt::{
    round_gram_lrl, round_gram_rlr, round_gram_simultaneous, round_qr, tt_svd, TtTensor,
};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// The headline use case: arithmetic inflates ranks, rounding deflates them,
/// the value is preserved — for every algorithm variant.
#[test]
fn arithmetic_growth_then_rounding_pipeline() {
    let mut r = rng(1);
    let base = TtTensor::random(&[12, 9, 11, 8], &[4, 5, 3], &mut r);
    // w = 2·x + x ∘ 1 (Hadamard with the all-ones rank-1 tensor is a no-op
    // value-wise but doubles nothing — build ones explicitly).
    let ones = {
        let cores = base
            .dims()
            .iter()
            .map(|&d| {
                tt_gram_round::tt::TtCore::from_v(
                    tt_gram_round::linalg::Matrix::from_fn(d, 1, |_, _| 1.0),
                    1,
                    d,
                    1,
                )
            })
            .collect();
        TtTensor::new(cores)
    };
    let had = base.hadamard(&ones); // same values, ranks unchanged (×1)
    let sum = base.add(&had); // = 2·base, ranks doubled
    assert_eq!(sum.max_rank(), 10);

    let mut expect = base.clone();
    expect.scale(2.0);
    let dense_expect = expect.to_dense();

    for (name, rounded) in [
        ("qr", round_qr(&sum, 1e-10)),
        ("rlr", round_gram_rlr(&sum, 1e-10)),
        ("lrl", round_gram_lrl(&sum, 1e-10)),
        ("sim", round_gram_simultaneous(&sum, 1e-10)),
    ] {
        assert_eq!(rounded.ranks(), base.ranks(), "{name}: ranks");
        let err = rounded.to_dense().fro_dist(&dense_expect);
        assert!(
            err < 1e-8 * (1.0 + dense_expect.fro_norm()),
            "{name}: err {err}"
        );
    }
}

/// Rounding is quasi-optimal: it finds the same ranks TT-SVD (the optimal
/// compressor) finds on the same data at the same tolerance.
#[test]
fn rounding_matches_tt_svd_ranks() {
    let mut r = rng(2);
    let x = TtTensor::random(&[8, 7, 6, 7], &[3, 4, 2], &mut r);
    let dense = x.to_dense();
    for tol in [1e-2, 1e-6] {
        let compressed = tt_svd(&dense, tol, None);
        // Re-represent x redundantly, then round at the same tolerance.
        let redundant = x.add(&x);
        let rounded = round_gram_lrl(&redundant, tol);
        assert!(
            rounded.max_rank() <= compressed.max_rank().max(x.max_rank()),
            "tol {tol}: rounded {:?} vs tt-svd {:?}",
            rounded.ranks(),
            compressed.ranks()
        );
    }
}

/// The cookies pipeline end-to-end with both QR and Gram rounding: same
/// convergence, same (small) ranks, correct solution.
#[test]
fn cookies_tt_gmres_end_to_end() {
    let problem = CookiesProblem::new(10, 3);
    let op = problem.operator();
    let f = problem.rhs();
    let pre = problem.mean_preconditioner();

    let mut results = Vec::new();
    for method in [RoundingMethod::Qr, RoundingMethod::GramLrl] {
        let opts = GmresOptions {
            tolerance: 1e-6,
            max_iters: 50,
            rounding: method,
            true_residual: TrueResidualMode::Dense,
            stagnation_window: 5,
            restart: None,
        };
        let (u, trace) = tt_gmres(&op, &pre, &f, &opts);
        assert!(trace.converged, "{method:?}");
        assert!(trace.true_relative_residual < 1e-5, "{method:?}");
        results.push((method, u, trace));
    }
    // Same iteration counts within 1 and same max Krylov ranks within 2
    // (the Fig. 5b/6a–b observation at tolerances above √ε).
    let (qr, gram) = (&results[0], &results[1]);
    assert!(
        qr.2.iterations.len().abs_diff(gram.2.iterations.len()) <= 1,
        "iteration counts diverged: {} vs {}",
        qr.2.iterations.len(),
        gram.2.iterations.len()
    );
    assert!(
        qr.2.max_krylov_rank().abs_diff(gram.2.max_krylov_rank()) <= 2,
        "ranks diverged: {} vs {}",
        qr.2.max_krylov_rank(),
        gram.2.max_krylov_rank()
    );
    // The two solutions agree.
    let gap = qr.1.to_dense().fro_dist(&gram.1.to_dense());
    assert!(
        gap < 1e-4 * (1.0 + qr.1.norm()),
        "solutions diverged: {gap}"
    );
}

/// Solving the tensorized system must agree with solving one parameter
/// combination directly.
#[test]
fn tensor_solution_matches_single_parameter_solve() {
    let problem = CookiesProblem::new(10, 3);
    let op = problem.operator();
    let f = problem.rhs();
    let pre = problem.mean_preconditioner();
    let opts = GmresOptions {
        tolerance: 1e-8,
        max_iters: 60,
        rounding: RoundingMethod::GramLrl,
        true_residual: TrueResidualMode::Off,
        stagnation_window: 5,
        restart: None,
    };
    let (u, trace) = tt_gmres(&op, &pre, &f, &opts);
    assert!(trace.converged);

    // Pick parameter combination (sample indices 1, 0, 2, 1) and solve the
    // corresponding spatial system directly with the banded factorization.
    let idx = [1usize, 0, 2, 1];
    let rho: Vec<f64> = idx
        .iter()
        .enumerate()
        .map(|(i, &k)| problem.samples[i][k])
        .collect();
    let a = problem.assemble_for(&rho);
    let n = problem.spatial_dim();
    let mut direct = vec![1.0; n];
    tt_gram_round::sparse::BandedCholesky::factor(&a)
        .unwrap()
        .solve_in_place(&mut direct);

    for probe in [0usize, n / 3, n / 2, n - 1] {
        let tt_val = u.eval(&[probe, idx[0], idx[1], idx[2], idx[3]]);
        assert!(
            (tt_val - direct[probe]).abs() < 1e-6 * (1.0 + direct[probe].abs()),
            "entry {probe}: TT {tt_val} vs direct {}",
            direct[probe]
        );
    }
}

/// Operator application grows ranks exactly by the operator rank, and the
/// rounded result satisfies the tolerance — the inner loop of TT-GMRES.
#[test]
fn operator_apply_then_round() {
    let problem = CookiesProblem::new(9, 3);
    let op = problem.operator();
    let f = problem.rhs();
    let gf = op.apply(&f);
    assert_eq!(gf.max_rank(), op.rank_growth()); // rank-1 rhs × operator rank
    let rounded = round_gram_lrl(&gf, 1e-8);
    assert!(rounded.max_rank() <= gf.max_rank());
    let err = rounded.to_dense().fro_dist(&gf.to_dense());
    assert!(err <= 1e-6 * (1.0 + gf.norm()));
}

/// Synthetic Table-I models round 20 → 10 under every variant (the Table I
/// contract used by all scaling figures).
#[test]
fn table1_contract_on_scaled_models() {
    let mut r = rng(3);
    for id in 1..=4 {
        let spec = tt_gram_round::tt::synthetic::ModelSpec::table1(id).scaled(0.004);
        let x = generate_redundant(&spec.dims, spec.target_rank, &mut r);
        assert_eq!(x.max_rank(), spec.rank);
        for (name, y) in [
            ("qr", round_qr(&x, 1e-8)),
            ("lrl", round_gram_lrl(&x, 1e-8)),
        ] {
            assert_eq!(y.max_rank(), spec.target_rank, "model {id} {name}");
        }
    }
}
