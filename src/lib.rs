//! # tt-gram-round
//!
//! A from-scratch Rust reproduction of *"Parallel Tensor Train Rounding
//! using Gram SVD"* (Al Daas, Ballard, Manning — IPDPS 2022): the TT format,
//! formal TT arithmetic, TT-Rounding via orthogonalization (the baseline,
//! Alg. 2) and via Gram SVD (the paper's contribution, Algs. 5–6), the §III
//! matrix-product truncation kernels, TT-GMRES, the cookies parametrized
//! PDE, and the dense-LA / sparse / distributed-runtime substrates they
//! need — all pure Rust.
//!
//! This crate is a facade that re-exports the workspace members under short
//! names. See `README.md` for a tour and `DESIGN.md` for the system
//! inventory.
//!
//! ```
//! use tt_gram_round::tt::{TtTensor, round_gram_lrl};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! // A 5-way tensor with all TT ranks 6.
//! let x = TtTensor::random(&[12, 10, 10, 10, 10], &[6; 4], &mut rng);
//! // Formal arithmetic inflates ranks: x + x has ranks 12 ...
//! let y = x.add(&x);
//! assert_eq!(y.max_rank(), 12);
//! // ... and Gram-SVD rounding recovers them.
//! let z = round_gram_lrl(&y, 1e-10);
//! assert_eq!(z.max_rank(), 6);
//! // The represented value is exactly 2x.
//! let mut two_x = x.clone();
//! two_x.scale(2.0);
//! assert!(z.sub(&two_x).norm() <= 1e-6 * two_x.norm());
//! ```

#![forbid(unsafe_code)]

/// The simulated distributed-memory runtime (communicators, cost model).
pub use tt_comm as comm;
/// The cookies parametrized-PDE application (§II-C, §V-D).
pub use tt_cookies as cookies;
/// TT tensors, arithmetic, and the rounding algorithms.
pub use tt_core as tt;
/// Dense linear algebra kernels.
pub use tt_linalg as linalg;
/// TT-GMRES and preconditioners.
pub use tt_solvers as solvers;
/// Sparse matrices and direct/iterative solvers.
pub use tt_sparse as sparse;
